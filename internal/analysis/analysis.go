// Package analysis is the static-analysis layer of the reproduction: the
// compile-time half of TMI that the paper delegates to an LLVM pass (§3.4).
//
// It abstractly interprets a workload against the same allocator, address
// layout and synchronization semantics the simulator uses — but with no
// timing, caches or page twinning — and builds a static model of the
// program: for every instruction site, the loads, stores and atomics (with
// memory orders) executed through it; for every heap and globals cache
// line, the per-thread byte footprint.
//
// Three consumers sit on top of the model:
//
//   - Verify checks the code-centric-consistency annotation contract
//     against the Table 2 policy (internal/ccc): every atomic site must be
//     region-bracketed, asm regions must balance, orders must classify
//     uniquely. A missing annotation silently reproduces the Sheriff-style
//     consistency bugs of Figures 3/11/12, so tmilint gates the catalog on
//     zero findings.
//   - PredictLines/CompareFalseSharing is the static false-sharing layout
//     predictor: it classifies lines exactly as the dynamic PEBS/HITM
//     detector (internal/detect) would — two or more threads, at least one
//     writer, disjoint bytes — and reports precision/recall against a
//     dynamic run.
//   - The dynamic sanitizer (internal/core, Config.Sanitize) cross-checks
//     the same contract at simulation time through machine.Hooks.
package analysis

import (
	"fmt"

	"repro/internal/disasm"
	"repro/tmi/workload"
)

// EnvKind selects the modeled runtime environment. The environment decides
// allocator placement policy and lock-word indirection, both of which change
// which lines are falsely shared (lu-ncb's bug exists only under the
// baseline allocator; spinlockpool's lock line stops being written at all
// under TMI's indirection).
type EnvKind int

// Environments.
const (
	// EnvTMI models TMI's runtime: cache-line alignment for large
	// allocations and process-shared lock indirection. Matches the
	// tmi-detect system, which is what predictions are validated against.
	EnvTMI EnvKind = iota
	// EnvPthreads models the baseline: Lockless allocator policy and
	// in-place lock words.
	EnvPthreads
)

func (e EnvKind) String() string {
	if e == EnvPthreads {
		return "pthreads"
	}
	return "tmi"
}

// Options configures a model build.
type Options struct {
	// Threads overrides the workload's default thread count when > 0.
	Threads int
	// Seed drives the per-thread deterministic random sources, with the
	// same derivation the simulator uses, so access footprints match a
	// dynamic run with the same seed.
	Seed int64
	// Env selects the modeled runtime environment (default EnvTMI).
	Env EnvKind
	// MaxOps bounds total interpreted operations across all threads
	// (default 50M); exceeding it aborts with a finding, so a livelocked
	// workload cannot hang the analysis.
	MaxOps int64
	// Trace records the whole-program abstract event trace into Model.Trace
	// (one entry per byte-addressed access, fence and wake edge, in global
	// interleaving order). The suggest pass consumes it to build the event
	// graph; off by default because traces are large.
	Trace bool
}

func (o Options) withDefaults(info workload.Info) Options {
	if o.Threads <= 0 {
		o.Threads = info.Threads
	}
	if o.Threads <= 0 {
		o.Threads = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxOps <= 0 {
		o.MaxOps = 50_000_000
	}
	return o
}

// SiteModel is the static per-PC classification of one instruction site —
// the analogue of one row of the LLVM pass's output.
type SiteModel struct {
	Info disasm.SiteInfo
	// Unknown marks a PC that does not disassemble to a registered site
	// (a hand-built workload.Site that bypassed Env.Site).
	Unknown bool

	// Executed access counts, split by how the program reached the site.
	PlainLoads  uint64
	PlainStores uint64
	AtomicOps   uint64
	// AtomicInAsm counts atomic operations executed inside an assembly
	// region (Table 2 case 4/5 context).
	AtomicInAsm uint64

	// Orders histograms the memory orders of the atomic operations; a site
	// executed under both relaxed and strong orders cannot be classified
	// into a single Table 2 region class.
	Orders map[workload.MemOrder]uint64

	// StreamOps/StreamBytes aggregate bulk streaming through the site.
	StreamOps   uint64
	StreamBytes int64

	// Threads counts operations per executing thread.
	Threads map[int]uint64
}

// Accesses is the total number of byte-addressed operations executed
// through the site.
func (sm *SiteModel) Accesses() uint64 {
	return sm.PlainLoads + sm.PlainStores + sm.AtomicOps
}

// Foot is one thread's byte footprint on one cache line.
type Foot struct {
	ReadMask  uint64 // bit i set: byte i of the line was read
	WriteMask uint64 // bit i set: byte i of the line was written
	Reads     uint64
	Writes    uint64
}

// LineModel is the static per-line access model over all threads.
type LineModel struct {
	Line      uint64
	PerThread map[int]*Foot
}

// TraceOp classifies one abstract event.
type TraceOp int

// Trace event kinds.
const (
	// OpPlain is a plain (non-atomic) load or store.
	OpPlain TraceOp = iota
	// OpAtomic is an application atomic with an explicit memory order.
	OpAtomic
	// OpRuntime is a runtime-library (psync) access; the runtime
	// synchronizes with full acquire+release semantics and commits the
	// PTSB, so OpRuntime events are both sync edges and flush points.
	OpRuntime
	// OpFence is a standalone fence; Addr/Width are zero.
	OpFence
	// OpWake is a scheduler-level happens-before edge (barrier release,
	// cond signal): the clock of TID flows into thread Other.
	OpWake
)

// TraceEvent is one event of the whole-program abstract trace, in global
// interleaving order. The deterministic round-robin scheduler makes the
// trace reproducible for fixed Options.
type TraceEvent struct {
	TID   int
	PC    uint64
	Site  string
	Addr  uint64
	Width int
	Read  bool
	Write bool
	Op    TraceOp
	Order workload.MemOrder
	// Other is the woken thread for OpWake events.
	Other int
	// Asm marks an access executed inside an assembly region; such accesses
	// synchronize with full acquire+release semantics (TSO-style AMBSA).
	Asm bool
}

// Acquires reports whether the event carries acquire semantics.
func (e *TraceEvent) Acquires() bool {
	return e.Op == OpRuntime || e.Asm || (e.Op != OpPlain && e.Order.Acquires())
}

// Releases reports whether the event carries release semantics.
func (e *TraceEvent) Releases() bool {
	return e.Op == OpRuntime || e.Asm || (e.Op != OpPlain && e.Order.Releases())
}

// Flushes reports whether the event commits the PTSB under code-centric
// consistency (runtime sync, non-relaxed atomics, non-relaxed fences).
func (e *TraceEvent) Flushes() bool {
	switch e.Op {
	case OpRuntime:
		return true
	case OpAtomic, OpFence:
		return e.Order != workload.Relaxed
	}
	return false
}

// Model is the static program model BuildModel produces.
type Model struct {
	Workload string
	Info     workload.Info
	Threads  int
	Seed     int64
	Env      EnvKind

	// Sites maps PC to its static classification; the whole registered
	// site table is present, executed or not.
	Sites map[uint64]*SiteModel
	// Lines maps line-aligned heap/globals addresses to their footprints.
	Lines map[uint64]*LineModel

	// AsmEnters counts assembly-region entries (explicit EnterAsm plus the
	// implicit region of AsmAtomicSwap).
	AsmEnters uint64
	// FenceOps counts executed non-relaxed standalone fences.
	FenceOps uint64

	// Findings holds interpretation-time findings (unbalanced regions,
	// deadlock, op-budget exhaustion, validation failure). Verify folds
	// them in with the site-table findings.
	Findings []Finding

	// Hung/Aborted record abnormal interpretation endings.
	Hung    bool
	Aborted bool

	// HeapEnd/GlobalsEnd snapshot the allocator bounds after Setup.
	HeapEnd    uint64
	GlobalsEnd uint64

	// Notes carries Env.Note values the workload reported.
	Notes map[string]float64
	// Ops is the total interpreted operation count.
	Ops int64

	// Trace is the abstract event trace (only with Options.Trace).
	Trace []TraceEvent
}

// BuildModel abstractly interprets w and returns its static model. The
// interpretation is deterministic for fixed Options.
func BuildModel(w workload.Workload, opt Options) (*Model, error) {
	info := w.Info()
	opt = opt.withDefaults(info)
	in := newInterp(w, info, opt)
	if err := w.Setup(&ienv{in}); err != nil {
		return nil, fmt.Errorf("analysis: setup of %s: %w", w.Name(), err)
	}
	in.snapshotBounds()
	in.run()
	m := in.model
	m.HeapEnd = in.al.HeapEnd()
	m.GlobalsEnd = in.al.GlobalsEnd()
	// Fold the full site table in, so never-executed sites are modeled too.
	for _, si := range in.prog.Sites() {
		pc := si.Site.PC()
		if sm, ok := m.Sites[pc]; ok {
			sm.Info = si
		} else {
			m.Sites[pc] = newSiteModel(si)
		}
	}
	if !in.aborted {
		if err := w.Validate(&ienv{in}); err != nil {
			in.finding("validate", "", 0, fmt.Sprintf("validation failed under sequential semantics: %v", err))
		}
	}
	return m, nil
}

func newSiteModel(si disasm.SiteInfo) *SiteModel {
	return &SiteModel{
		Info:    si,
		Orders:  make(map[workload.MemOrder]uint64),
		Threads: make(map[int]uint64),
	}
}
