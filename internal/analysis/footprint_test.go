package analysis

// Footprint-classification edge cases the source-level analyzer (srcvet)
// leans on: zero-size fields contribute empty masks and must never count
// as writers, and fields at identical offsets (embedded structs, promoted
// fields) written by the same thread must not self-report as cross-thread
// overlap.

import (
	"testing"

	"repro/internal/detect"
)

// foot builds a Foot from byte ranges: [lo,hi) write span, [rlo,rhi) read
// span. Zero-width ranges produce empty masks.
func foot(wlo, whi, rlo, rhi int) *Foot {
	f := &Foot{}
	for b := wlo; b < whi; b++ {
		f.WriteMask |= 1 << uint(b)
		f.Writes++
	}
	for b := rlo; b < rhi; b++ {
		f.ReadMask |= 1 << uint(b)
		f.Reads++
	}
	return f
}

func classify(per map[int]*Foot) LinePrediction {
	return ClassifyLine(&LineModel{Line: 0x1000, PerThread: per})
}

func TestClassifyDisjointWritersIsFalseSharing(t *testing.T) {
	p := classify(map[int]*Foot{
		0: foot(0, 8, 0, 0),
		1: foot(8, 16, 0, 0),
	})
	if p.Class != detect.SharingFalse {
		t.Fatalf("disjoint writers: class = %v, want false", p.Class)
	}
	if p.Writers != 2 {
		t.Fatalf("writers = %d, want 2", p.Writers)
	}
}

func TestClassifyZeroSizeFieldIsNotAWriter(t *testing.T) {
	// Thread 1 "writes" a zero-size field at offset 8: the empty mask must
	// not make it a writer, so the line has a single writer and no sharing.
	p := classify(map[int]*Foot{
		0: foot(0, 8, 0, 0),
		1: foot(8, 8, 0, 0), // zero-size write: empty mask
	})
	if p.Writers != 1 {
		t.Fatalf("zero-size footprint counted as writer: writers = %d, want 1", p.Writers)
	}
	if p.Class != detect.SharingNone {
		t.Fatalf("class = %v, want none (single real writer)", p.Class)
	}
}

func TestClassifyZeroSizeAtSharedOffsetDoesNotOverlap(t *testing.T) {
	// A zero-size field sits at the same offset as thread 0's hot field
	// (the [0]byte marker idiom). Thread 1 writes it plus its own bytes:
	// the zero-size component adds nothing to the mask, so the writers
	// stay disjoint — false sharing, not true.
	p := classify(map[int]*Foot{
		0: foot(0, 8, 0, 0),
		1: func() *Foot {
			f := foot(8, 16, 0, 0)
			// zero-size write at offset 0: no mask bits.
			return f
		}(),
	})
	if p.Class != detect.SharingFalse {
		t.Fatalf("class = %v, want false", p.Class)
	}
}

func TestClassifyIdenticalOffsetsSameThreadNoSelfOverlap(t *testing.T) {
	// Embedded-struct aliasing: the same thread writes offset 0 twice —
	// once through the promoted field, once through the explicit embedded
	// path. Identical offsets within ONE thread's footprint must not
	// produce a cross-thread overlap verdict.
	a := foot(0, 8, 0, 0)
	aliased := foot(0, 8, 0, 0)
	a.WriteMask |= aliased.WriteMask // same bytes, same thread
	a.Writes += aliased.Writes
	p := classify(map[int]*Foot{
		0: a,
		1: foot(8, 16, 0, 0),
	})
	if p.Class != detect.SharingFalse {
		t.Fatalf("same-thread aliased writes misclassified: class = %v, want false", p.Class)
	}
}

func TestClassifyIdenticalOffsetsAcrossThreadsIsTrueSharing(t *testing.T) {
	// The converse must hold: two threads writing the same embedded field
	// (same offset) is genuine true sharing.
	p := classify(map[int]*Foot{
		0: foot(0, 8, 0, 0),
		1: foot(0, 8, 0, 0),
	})
	if p.Class != detect.SharingTrue {
		t.Fatalf("cross-thread identical offsets: class = %v, want true", p.Class)
	}
}

func TestClassifyReaderWriterOverlapIsTrueSharing(t *testing.T) {
	p := classify(map[int]*Foot{
		0: foot(0, 8, 0, 0),
		1: foot(8, 16, 0, 8), // writes its own bytes, reads thread 0's
	})
	if p.Class != detect.SharingTrue {
		t.Fatalf("reader overlapping a writer: class = %v, want true", p.Class)
	}
}

func TestClassifyAllReadersNoSharing(t *testing.T) {
	p := classify(map[int]*Foot{
		0: foot(0, 0, 0, 8),
		1: foot(0, 0, 0, 8),
	})
	if p.Class != detect.SharingNone {
		t.Fatalf("read-only line: class = %v, want none", p.Class)
	}
}
