package srcvet

// The repair planner: computed `_ [N]byte` padding insertions and advisory
// field reorderings that give each inferred writer a private cache line,
// plus the -fix preview that applies the paddings to the AST and renders a
// unified diff.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/printer"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Repair is one proposed source edit.
type Repair struct {
	// Kind is "pad" (insert `_ [Bytes]byte` after field After of Struct),
	// "pad-elem" (trailing pad inside element struct Struct), or
	// "reorder" (advisory; Detail carries the suggestion).
	Kind   string
	Struct string
	After  string
	Bytes  int64
	Detail string
}

func (r Repair) String() string {
	switch r.Kind {
	case "pad", "pad-elem":
		return fmt.Sprintf("insert `_ [%d]byte` after %s.%s%s", r.Bytes, r.Struct, r.After, suffixDetail(r.Detail))
	default:
		return fmt.Sprintf("%s %s: %s", r.Kind, r.Struct, r.Detail)
	}
}

func suffixDetail(d string) string {
	if d == "" {
		return ""
	}
	return " (" + d + ")"
}

// planRepairs computes the repair set for one flagged region.
func planRepairs(pkg *Package, rg *region, findings []*Finding) []Repair {
	switch t := rg.typ.Underlying().(type) {
	case *types.Struct:
		if named, ok := rg.typ.(*types.Named); ok {
			return planStructRepairs(pkg, rg, named)
		}
		return []Repair{{Kind: "reorder", Struct: rg.name,
			Detail: "unnamed struct: pad each writer's fields to 64 bytes manually"}}
	case *types.Array, *types.Slice:
		var elem types.Type
		switch c := t.(type) {
		case *types.Array:
			elem = c.Elem()
		case *types.Slice:
			elem = c.Elem()
		}
		if named, ok := deref(elem).(*types.Named); ok {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct && named.Obj().Pkg() == pkg.Types {
				return planElemPad(named)
			}
		}
		return []Repair{{Kind: "pad-elem", Struct: rg.name,
			Detail: fmt.Sprintf("replace the %d-byte element with a struct padded to %d bytes", sizeOf(elem), LineBytes)}}
	}
	return nil
}

// planElemPad pads an array/slice element struct to a full line with a
// trailing `_ [N]byte`.
func planElemPad(named *types.Named) []Repair {
	st := named.Underlying().(*types.Struct)
	size := sizeOf(named)
	if size%LineBytes == 0 {
		return nil
	}
	pad := LineBytes - size%LineBytes
	after := ""
	if st.NumFields() > 0 {
		after = st.Field(st.NumFields() - 1).Name()
	}
	return []Repair{{
		Kind: "pad-elem", Struct: named.Obj().Name(), After: after, Bytes: pad,
		Detail: fmt.Sprintf("element size %d → %d, one element per line", size, size+pad),
	}}
}

// planStructRepairs attributes each top-level field of the struct to the
// writer groups that touch it, then inserts paddings at writer-group
// boundaries (and recurses into array fields written with a per-goroutine
// stride).
func planStructRepairs(pkg *Package, rg *region, named *types.Named) []Repair {
	st, ok := named.Underlying().(*types.Struct)
	if !ok || st.NumFields() == 0 {
		return nil
	}
	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	offs := Sizes.Offsetsof(fields)

	// groupOf collapses expanded spawn-loop writers back into their `go`
	// statement: elements of one spawn loop are one repair group.
	groupOf := func(k writerKey) writerKey { k.elem = 0; return k }
	fieldGroups := make([]map[writerKey]bool, len(fields))
	for i := range fieldGroups {
		fieldGroups[i] = map[writerKey]bool{}
	}
	intraField := map[int]bool{} // field written by >1 element of a spawn loop
	perFieldElems := make([]map[writerKey]map[int]bool, len(fields))
	for i := range perFieldElems {
		perFieldElems[i] = map[writerKey]map[int]bool{}
	}
	for wid, w := range rg.writers {
		k := rg.wids[wid]
		g := groupOf(k)
		for _, ref := range w.refs {
			if ref.size <= 0 {
				continue
			}
			for i := range fields {
				fsz := sizeOf(fields[i].Type())
				if ref.off < offs[i]+fsz && ref.off+ref.size > offs[i] {
					fieldGroups[i][g] = true
					if k.kind == "go" {
						em := perFieldElems[i][g]
						if em == nil {
							em = map[int]bool{}
							perFieldElems[i][g] = em
						}
						em[k.elem] = true
						if len(em) > 1 {
							intraField[i] = true
						}
					}
				}
			}
		}
	}

	var repairs []Repair
	// Intra-field stride sharing: pad the element type.
	for i := range fields {
		if !intraField[i] {
			continue
		}
		var elem types.Type
		switch c := fields[i].Type().Underlying().(type) {
		case *types.Array:
			elem = c.Elem()
		case *types.Slice:
			elem = c.Elem()
		default:
			continue
		}
		if en, ok := deref(elem).(*types.Named); ok && en.Obj().Pkg() == pkg.Types {
			if _, isStruct := en.Underlying().(*types.Struct); isStruct {
				repairs = append(repairs, planElemPad(en)...)
				continue
			}
		}
		repairs = append(repairs, Repair{
			Kind: "pad-elem", Struct: named.Obj().Name(), After: fields[i].Name(),
			Detail: fmt.Sprintf("replace the %d-byte element of %s with a struct padded to %d bytes",
				sizeOf(elem), fields[i].Name(), LineBytes),
		})
	}

	// Inter-field boundaries: walk fields in declaration order, inserting
	// a pad whenever ownership changes hands mid-line. Offsets are
	// re-simulated as pads accumulate.
	var cur map[writerKey]bool
	curField := -1
	off := int64(0)
	for i, f := range fields {
		al := Sizes.Alignof(f.Type())
		off = roundUp(off, al)
		g := fieldGroups[i]
		if len(g) > 0 {
			if cur != nil && !sameGroups(cur, g) && off%LineBytes != 0 {
				pad := roundUp(off, LineBytes) - off
				repairs = append(repairs, Repair{
					Kind: "pad", Struct: named.Obj().Name(), After: fields[curField].Name(), Bytes: pad,
					Detail: fmt.Sprintf("isolate %s onto its own line", f.Name()),
				})
				off += pad
			}
			cur = g
			curField = i
		} else if curField >= 0 {
			curField = i // unowned fields ride with the previous group
		}
		off += sizeOf(f.Type())
	}

	// Advisory reordering when one group's fields are non-contiguous.
	if adv := reorderAdvice(fields, fieldGroups); adv != "" {
		repairs = append(repairs, Repair{Kind: "reorder", Struct: named.Obj().Name(), Detail: adv})
	}
	return repairs
}

func sameGroups(a, b map[writerKey]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// reorderAdvice suggests grouping fields by writer when a writer's fields
// are interleaved with another's (less padding than isolating in place).
func reorderAdvice(fields []*types.Var, groups []map[writerKey]bool) string {
	sig := func(g map[writerKey]bool) string {
		keys := make([]string, 0, len(g))
		for k := range g {
			keys = append(keys, fmt.Sprintf("%s@%d:%s", k.kind, k.pos, k.lock))
		}
		sort.Strings(keys)
		return strings.Join(keys, "+")
	}
	seen := map[string]int{} // signature -> last field index
	interleaved := false
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		s := sig(g)
		if last, ok := seen[s]; ok && last != i-1 {
			// The same group resumes after a different group intervened.
			if gap := groupsBetween(groups, last, i); gap {
				interleaved = true
			}
		}
		seen[s] = i
	}
	if !interleaved {
		return ""
	}
	// Suggested order: stable-sort owned fields by group signature.
	type fg struct {
		name string
		sig  string
		idx  int
	}
	var owned []fg
	for i, g := range groups {
		if len(g) > 0 {
			owned = append(owned, fg{fields[i].Name(), sig(g), i})
		}
	}
	sort.SliceStable(owned, func(i, j int) bool { return owned[i].sig < owned[j].sig })
	names := make([]string, len(owned))
	for i, f := range owned {
		names[i] = f.name
	}
	return "group fields by writer to reduce padding: " + strings.Join(names, ", ")
}

func groupsBetween(groups []map[writerKey]bool, lo, hi int) bool {
	for i := lo + 1; i < hi; i++ {
		if len(groups[i]) > 0 {
			return true
		}
	}
	return false
}

func roundUp(x, to int64) int64 {
	if to <= 0 {
		return x
	}
	return (x + to - 1) / to * to
}

// FixResult is one rewritten file.
type FixResult struct {
	Path string
	Orig string
	New  string
}

// ApplyFixes applies every "pad"/"pad-elem" repair of the result to the
// package ASTs and returns the rewritten files. Advisory repairs are not
// applied.
func ApplyFixes(pkgs []*Package, res *Result) ([]FixResult, error) {
	// Collect pads per (package, struct name): After -> bytes. "" means
	// trailing.
	type padKey struct {
		pkg   *Package
		strct string
		after string
	}
	pads := map[padKey]int64{}
	byRel := map[string]*Package{}
	for _, p := range pkgs {
		byRel[p.Rel] = p
	}
	for _, f := range res.Findings {
		pkg := byRel[f.Pkg]
		if pkg == nil {
			continue
		}
		for _, r := range f.Repairs {
			if (r.Kind == "pad" || r.Kind == "pad-elem") && r.Bytes > 0 {
				k := padKey{pkg, r.Struct, r.After}
				if r.Bytes > pads[k] {
					pads[k] = r.Bytes
				}
			}
		}
	}
	if len(pads) == 0 {
		return nil, nil
	}

	touched := map[*ast.File]*Package{}
	for k, n := range pads {
		file, st := findStruct(k.pkg, k.strct)
		if st == nil {
			return nil, fmt.Errorf("srcvet: cannot locate struct %s in %s", k.strct, k.pkg.Rel)
		}
		insertPad(st, k.after, n)
		touched[file] = k.pkg
	}

	var out []FixResult
	for file, pkg := range touched {
		path := pkg.Fset.Position(file.Pos()).Filename
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, pkg.Fset, file); err != nil {
			return nil, err
		}
		// The printer emits raw tabs for the synthesized fields; reformat so
		// the preview (and anything that applies it) is gofmt-clean.
		src, err := format.Source(buf.Bytes())
		if err != nil {
			src = buf.Bytes()
		}
		orig, err := readFile(path)
		if err != nil {
			return nil, err
		}
		out = append(out, FixResult{Path: path, Orig: orig, New: string(src)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// findStruct locates the AST StructType of a named type in the package.
func findStruct(pkg *Package, name string) (*ast.File, *ast.StructType) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return f, st
				}
			}
		}
	}
	return nil, nil
}

// insertPad inserts `_ [n]byte` after the named field (or at the end for
// after == "").
func insertPad(st *ast.StructType, after string, n int64) {
	pad := &ast.Field{
		Names: []*ast.Ident{ast.NewIdent("_")},
		Type: &ast.ArrayType{
			Len: &ast.BasicLit{Kind: token.INT, Value: strconv.FormatInt(n, 10)},
			Elt: ast.NewIdent("byte"),
		},
	}
	list := st.Fields.List
	at := len(list)
	if after != "" {
		for i, f := range list {
			for _, nm := range f.Names {
				if nm.Name == after {
					at = i + 1
				}
			}
		}
	}
	// Drop position info so go/printer lays the new field out cleanly.
	st.Fields.List = append(list[:at:at], append([]*ast.Field{pad}, list[at:]...)...)
}

// UnifiedDiff renders an LCS-based unified diff with 3 lines of context.
func UnifiedDiff(path, a, b string) string {
	al := splitLines(a)
	bl := splitLines(b)
	ops := diffOps(al, bl)
	if len(ops) == 0 {
		return ""
	}
	var sb strings.Builder
	const ctx = 3
	hunks := 0
	i := 0
	for i < len(ops) {
		if ops[i].kind == ' ' {
			i++
			continue
		}
		// Hunk: back up for context.
		start := i
		for start > 0 && ops[start-1].kind == ' ' && i-start < ctx {
			start--
		}
		end := i
		gap := 0
		for end < len(ops) {
			if ops[end].kind == ' ' {
				gap++
				if gap > 2*ctx {
					break
				}
			} else {
				gap = 0
			}
			end++
		}
		for end > start && ops[end-1].kind == ' ' && gap > ctx {
			end--
			gap--
		}
		aStart, bStart := ops[start].aLine, ops[start].bLine
		var aN, bN int
		var body strings.Builder
		for _, op := range ops[start:end] {
			switch op.kind {
			case ' ':
				aN++
				bN++
			case '-':
				aN++
			case '+':
				bN++
			}
			fmt.Fprintf(&body, "%c%s\n", op.kind, op.text)
		}
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n%s", aStart+1, aN, bStart+1, bN, body.String())
		hunks++
		i = end
	}
	if hunks == 0 {
		return ""
	}
	return fmt.Sprintf("--- %s\n+++ %s (padded)\n%s", path, path, sb.String())
}

type diffOp struct {
	kind         byte // ' ', '-', '+'
	text         string
	aLine, bLine int
}

// diffOps computes an LCS alignment of the two line slices.
func diffOps(a, b []string) []diffOp {
	n, m := len(a), len(b)
	lcs := make([][]int, n+1)
	for i := range lcs {
		lcs[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []diffOp
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, diffOp{' ', a[i], i, j})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, diffOp{'-', a[i], i, j})
			i++
		default:
			ops = append(ops, diffOp{'+', b[j], i, j})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, diffOp{'-', a[i], i, j})
	}
	for ; j < m; j++ {
		ops = append(ops, diffOp{'+', b[j], i, j})
	}
	return ops
}

func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}

func splitLines(s string) []string {
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}
