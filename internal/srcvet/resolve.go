package srcvet

// The write-target resolver: maps an lvalue expression to (root object,
// byte offset, size, per-goroutine stride) under the modeled StdSizes.
// Selector chains walk exact field offsets (flattening embedded structs);
// constant indices fold into the offset; an index by a worker-loop
// variable becomes a stride; an arbitrary index widens to the whole
// container (a sound over-approximation that can only upgrade a verdict
// to true sharing, never fabricate false sharing). Mid-path pointer
// fields end the region — the pointee is a different allocation.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

type resolved struct {
	ok      bool
	root    types.Object
	off     int64
	size    int64 // set by the leaf (type size, or container span when widened)
	stride  int64 // element stride for worker-indexed accesses
	widened bool  // arbitrary-index: size already covers the container
	path    string
	typ     types.Type // type of the resolved expression
}

// resolveExpr resolves e in ctx. ctx may be nil (no substitutions).
func (p *pass) resolveExpr(e ast.Expr, ctx *goCtx) resolved {
	info := p.pkg.Info
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return resolved{}
		}
		if ctx != nil {
			if bound, ok := ctx.bind[obj]; ok {
				// Parameter: resolve the call-site argument in the outer
				// (spawning) context, which has no substitutions of its own.
				return p.resolveExpr(bound, nil)
			}
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return resolved{}
		}
		t := deref(v.Type())
		return resolved{ok: true, root: obj, typ: t, size: sizeOf(t), path: v.Name()}

	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return resolved{}
		}
		r := p.resolveExpr(e.X, ctx)
		if !r.ok {
			return resolved{}
		}
		r.typ = types.NewPointer(r.typ)
		return r

	case *ast.StarExpr:
		r := p.resolveExpr(e.X, ctx)
		if !r.ok {
			return resolved{}
		}
		r.typ = deref(r.typ)
		r.size = sizeOf(r.typ)
		return r

	case *ast.SelectorExpr:
		// Qualified identifier: pkg.Var in another package.
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				obj := info.Uses[e.Sel]
				if v, ok := obj.(*types.Var); ok {
					t := deref(v.Type())
					return resolved{ok: true, root: obj, typ: t, size: sizeOf(t), path: v.Name()}
				}
				return resolved{}
			}
		}
		sel := info.Selections[e]
		if sel == nil || sel.Kind() != types.FieldVal {
			return resolved{}
		}
		r := p.resolveExpr(e.X, ctx)
		if !r.ok {
			return resolved{}
		}
		if r.widened {
			// Already covering a whole container; deeper selection cannot
			// narrow it soundly. Keep the span.
			r.path += "." + e.Sel.Name
			return r
		}
		base := deref(r.typ)
		off, leafT, ok := walkFieldPath(base, sel.Index())
		if !ok {
			return resolved{}
		}
		r.off += off
		r.typ = leafT
		r.size = sizeOf(leafT)
		r.path += "." + e.Sel.Name
		return r

	case *ast.IndexExpr:
		r := p.resolveExpr(e.X, ctx)
		if !r.ok {
			return resolved{}
		}
		if r.widened {
			return r
		}
		var elem types.Type
		var count int64 = -1
		switch c := deref(r.typ).Underlying().(type) {
		case *types.Array:
			elem, count = c.Elem(), c.Len()
		case *types.Slice:
			elem = c.Elem()
		default:
			return resolved{}
		}
		esz := sizeOf(elem)
		if esz <= 0 {
			return resolved{}
		}
		if tv, ok := p.pkg.Info.Types[e.Index]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
			if c, ok := constant.Int64Val(tv.Value); ok && c >= 0 {
				r.off += c * esz
				r.typ = elem
				r.size = sizeOf(elem)
				r.path += fmt.Sprintf("[%d]", c)
				return r
			}
			return resolved{}
		}
		if p.isDistinctIndex(e.Index, ctx) {
			if r.stride != 0 {
				// Two nested per-goroutine strides: beyond the model.
				return resolved{}
			}
			r.stride = esz
			r.typ = elem
			r.size = sizeOf(elem)
			r.path += "[i]"
			return r
		}
		// Arbitrary index: the write may land on any element.
		span := esz
		if count > 0 {
			span = count * esz
		} else {
			span = int64(p.opt.SpawnCount) * esz
		}
		r.widened = true
		r.typ = elem
		r.size = span
		r.path += "[*]"
		return r
	}
	return resolved{}
}

// isDistinctIndex reports whether idx is a per-goroutine-distinct index in
// ctx: the spawn loop's variable, or a parameter bound to it.
func (p *pass) isDistinctIndex(idx ast.Expr, ctx *goCtx) bool {
	if ctx == nil {
		return false
	}
	id, ok := ast.Unparen(idx).(*ast.Ident)
	if !ok {
		return false
	}
	obj := p.pkg.Info.Uses[id]
	return obj != nil && ctx.distinct[obj]
}

// walkFieldPath walks a go/types selection index path from base, summing
// exact field offsets. A pointer field mid-path fails: its pointee is a
// separate allocation, not part of this region.
func walkFieldPath(base types.Type, index []int) (off int64, leaf types.Type, ok bool) {
	t := base
	for step, idx := range index {
		st, okS := t.Underlying().(*types.Struct)
		if !okS {
			return 0, nil, false
		}
		if idx >= st.NumFields() {
			return 0, nil, false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		offs := Sizes.Offsetsof(fields)
		off += offs[idx]
		ft := fields[idx].Type()
		if _, isPtr := ft.Underlying().(*types.Pointer); isPtr {
			if step != len(index)-1 {
				return 0, nil, false
			}
		}
		t = deref(ft)
	}
	return off, t, true
}

func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func sizeOf(t types.Type) int64 {
	if t == nil {
		return 0
	}
	return Sizes.Sizeof(t)
}

// isSyncType reports whether t is sync.<name> (possibly through a named
// alias chain).
func isSyncType(t types.Type, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// isAtomicType reports whether t is one of sync/atomic's typed atomics.
func isAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
