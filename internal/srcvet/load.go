package srcvet

// Package loading: parse a directory's non-test Go files (honoring build
// constraints via go/build file matching), type-check them with the
// modeled StdSizes, and resolve imports — stdlib through the source
// importer, module-local paths by mapping them onto the enclosing
// module's directory tree. Everything here is stdlib-only: go/ast,
// go/parser, go/types, go/importer, go/build.

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Dir is the on-disk directory; Rel is the display path used in
	// finding IDs (relative to the scan root).
	Dir string
	Rel string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages, memoizing module-local imports.
type Loader struct {
	fset *token.FileSet
	std  types.Importer

	// modPath/modRoot map module-local import paths onto directories;
	// empty when the scan root is not inside a module.
	modPath string
	modRoot string

	memo map[string]*types.Package // by import path ("" while in progress)
}

// NewLoader builds a loader rooted at dir: the nearest enclosing go.mod
// (if any) provides the module mapping for intra-module imports.
func NewLoader(dir string) (*Loader, error) {
	fset := token.NewFileSet()
	l := &Loader{
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		memo: map[string]*types.Package{},
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for d := abs; ; {
		if fi, err := os.Stat(filepath.Join(d, "go.mod")); err == nil && !fi.IsDir() {
			mod, err := modulePath(filepath.Join(d, "go.mod"))
			if err != nil {
				return nil, err
			}
			l.modPath, l.modRoot = mod, d
			break
		}
		parent := filepath.Dir(d)
		if parent == d {
			break
		}
		d = parent
	}
	return l, nil
}

// Fset exposes the loader's file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("srcvet: no module line in %s", gomod)
}

// Import resolves an import path for the type checker: module-local paths
// load from the module tree (memoized, with cycle detection); everything
// else goes to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.memo[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("srcvet: import cycle through %q", path)
		}
		return pkg, nil
	}
	if l.modPath != "" && (path == l.modPath || strings.HasPrefix(path, l.modPath+"/")) {
		dir := filepath.Join(l.modRoot, strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/"))
		l.memo[path] = nil // in progress
		pkg, err := l.load(dir, path)
		if err != nil {
			delete(l.memo, path)
			return nil, err
		}
		l.memo[path] = pkg.Types
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir parses and type-checks the package in dir. rel is the display
// path stamped into finding IDs.
func (l *Loader) LoadDir(dir, rel string) (*Package, error) {
	pkg, err := l.load(dir, "")
	if err != nil {
		return nil, err
	}
	pkg.Rel = filepath.ToSlash(rel)
	return pkg, nil
}

func (l *Loader) load(dir, importPath string) (*Package, error) {
	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("srcvet: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	// A directory may mix `package x` with tooling files; keep the
	// majority package.
	files = majorityPackage(files)

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var firstErr error
	conf := types.Config{
		Importer: l,
		Sizes:    &Sizes,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	path := importPath
	if path == "" {
		path = "vetsrc/" + filepath.Base(dir)
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("srcvet: type-checking %s: %w", dir, firstErr)
	}
	return &Package{Dir: dir, Rel: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// goFiles lists the buildable, non-test Go files of dir in stable order.
func goFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		ok, err := ctx.MatchFile(dir, name)
		if err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func majorityPackage(files []*ast.File) []*ast.File {
	count := map[string][]*ast.File{}
	for _, f := range files {
		count[f.Name.Name] = append(count[f.Name.Name], f)
	}
	best := files
	for _, fs := range count {
		if len(count) > 1 && len(fs) > len(best) || len(count) > 1 && best == nil {
			best = fs
		}
	}
	if len(count) > 1 {
		// Deterministic pick: the alphabetically first of the largest sets.
		bestName := ""
		bestN := -1
		for name, fs := range count {
			if len(fs) > bestN || (len(fs) == bestN && name < bestName) {
				bestName, bestN = name, len(fs)
			}
		}
		best = count[bestName]
	}
	return best
}

// ScanDirs expands CLI arguments into package directories: a plain dir is
// itself; a dir ending in "/..." walks recursively, skipping testdata,
// hidden directories, and dirs without buildable Go files.
func ScanDirs(args []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, arg := range args {
		if rest, ok := strings.CutSuffix(arg, "/..."); ok {
			if rest == "" {
				rest = "."
			}
			err := filepath.WalkDir(rest, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				base := filepath.Base(path)
				if base == "testdata" || (strings.HasPrefix(base, ".") && path != rest) || strings.HasPrefix(base, "_") {
					return filepath.SkipDir
				}
				names, err := goFiles(path)
				if err == nil && len(names) > 0 {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(arg)
	}
	sort.Strings(dirs)
	return dirs, nil
}
