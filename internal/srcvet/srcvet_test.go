package srcvet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/toolio"
)

// fixtureRoot is the corpus of known shapes: three seeded bugs
// (adjcounters, packed, mutexline) and two controls (padded, clean).
var fixtureRoot = filepath.Join("..", "..", "testdata", "srcvet")

var fixtureNames = []string{"adjcounters", "clean", "mutexline", "packed", "padded"}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	dir := filepath.Join(fixtureRoot, name)
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("%s: NewLoader: %v", name, err)
	}
	pkg, err := l.LoadDir(dir, name)
	if err != nil {
		t.Fatalf("%s: LoadDir: %v", name, err)
	}
	return pkg
}

func analyzeFixture(t *testing.T, name string, opt Options) *Result {
	t.Helper()
	res := Analyze([]*Package{loadFixture(t, name)}, opt)
	for _, err := range res.Errors {
		t.Errorf("%s: analysis error: %v", name, err)
	}
	return res
}

// TestFixtureGoldens runs the full pipeline — layout, ownership,
// classification, confirmation bridge — over every fixture and compares
// the rendered report to its golden. Regenerate with SRCVET_UPDATE=1.
func TestFixtureGoldens(t *testing.T) {
	for _, name := range fixtureNames {
		t.Run(name, func(t *testing.T) {
			res := analyzeFixture(t, name, Options{Confirm: true})
			var sb strings.Builder
			Render(&sb, res)
			sb.WriteString(Summary(res))
			sb.WriteString("\n")
			got := sb.String()

			golden := filepath.Join(fixtureRoot, "golden", name+".txt")
			if os.Getenv("SRCVET_UPDATE") != "" {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with SRCVET_UPDATE=1): %v", err)
			}
			if got != string(want) {
				t.Errorf("report mismatch\n--- want\n%s--- got\n%s", want, got)
			}
		})
	}
}

// TestSeededBugsFlaggedAndConfirmed pins the corpus precision: every
// seeded fixture is flagged AND reproduced by the dynamic detector;
// every control passes clean.
func TestSeededBugsFlaggedAndConfirmed(t *testing.T) {
	for _, name := range []string{"adjcounters", "packed", "mutexline"} {
		res := analyzeFixture(t, name, Options{Confirm: true})
		if len(res.Findings) == 0 {
			t.Errorf("%s: seeded false sharing not flagged", name)
			continue
		}
		for _, f := range res.Findings {
			if f.Confirmation != toolio.ConfirmConfirmed {
				t.Errorf("%s: %s graded %q, want %q", name, f.ID, f.Confirmation, toolio.ConfirmConfirmed)
			}
		}
	}
	for _, name := range []string{"padded", "clean"} {
		res := analyzeFixture(t, name, Options{})
		for _, f := range res.Findings {
			t.Errorf("%s: control fixture flagged: %s", name, f.ID)
		}
	}
}

// TestTrueSharingCountedNotFlagged: clean.RunShared writes one field from
// two goroutines — contention, but not a layout bug.
func TestTrueSharingCountedNotFlagged(t *testing.T) {
	res := analyzeFixture(t, "clean", Options{})
	if res.TrueLines != 1 {
		t.Errorf("clean: TrueLines = %d, want 1 (RunShared)", res.TrueLines)
	}
	if len(res.Findings) != 0 {
		t.Errorf("clean: %d findings, want 0", len(res.Findings))
	}
}

// TestApplySuggestedPadding applies tmivet's own repairs to each seeded
// fixture and re-analyzes the padded source: the findings must vanish.
func TestApplySuggestedPadding(t *testing.T) {
	for _, name := range []string{"adjcounters", "packed", "mutexline"} {
		t.Run(name, func(t *testing.T) {
			pkg := loadFixture(t, name)
			res := Analyze([]*Package{pkg}, Options{})
			if len(res.Findings) == 0 {
				t.Fatalf("%s: expected findings before fixing", name)
			}
			fixes, err := ApplyFixes([]*Package{pkg}, res)
			if err != nil {
				t.Fatalf("ApplyFixes: %v", err)
			}
			if len(fixes) == 0 {
				t.Fatalf("%s: no applicable fixes", name)
			}
			dir := filepath.Join(t.TempDir(), name)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			for _, fx := range fixes {
				if fx.New == fx.Orig {
					t.Errorf("%s: fix is a no-op for %s", name, fx.Path)
				}
				dst := filepath.Join(dir, filepath.Base(fx.Path))
				if err := os.WriteFile(dst, []byte(fx.New), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			l, err := NewLoader(dir)
			if err != nil {
				t.Fatal(err)
			}
			fixed, err := l.LoadDir(dir, name)
			if err != nil {
				t.Fatalf("%s: padded source fails to load: %v", name, err)
			}
			res2 := Analyze([]*Package{fixed}, Options{})
			for _, f := range res2.Findings {
				t.Errorf("%s: finding survives suggested padding: %s [%s]", name, f.ID, f.Spans())
			}
		})
	}
}

// TestWaivers: a waived finding is suppressed (result OK) but still listed.
func TestWaivers(t *testing.T) {
	res := analyzeFixture(t, "packed", Options{})
	if len(res.Findings) != 1 {
		t.Fatalf("packed: %d findings, want 1", len(res.Findings))
	}
	id := res.Findings[0].ID
	if res.OK() {
		t.Error("unwaived finding should fail the result")
	}
	res = analyzeFixture(t, "packed", Options{Waivers: map[string]string{id: "fixture"}})
	if len(res.Findings) != 1 || !res.Findings[0].Waived {
		t.Fatalf("waiver for %s not applied", id)
	}
	if !res.OK() {
		t.Error("fully waived result should be OK")
	}
	rep := res.Report()
	if !rep.OK {
		t.Error("toolio report should be OK when every finding is waived")
	}
}

// TestReportSchema: the toolio report round-trips and carries the scan
// stats and writers.
func TestReportSchema(t *testing.T) {
	res := analyzeFixture(t, "mutexline", Options{})
	rep := res.Report()
	if rep.OK {
		t.Error("report with unwaived findings must not be OK")
	}
	if rep.Version != toolio.SchemaVersion {
		t.Errorf("Version = %d, want %d", rep.Version, toolio.SchemaVersion)
	}
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %d, want 1", len(rep.Findings))
	}
	f := rep.Findings[0]
	if len(f.Writers) != 2 {
		t.Errorf("writers = %v, want lock-word + critsec", f.Writers)
	}
	if len(f.Repairs) == 0 {
		t.Error("finding carries no repairs")
	}
	if rep.Stats["regions"] != 1 || rep.Stats["packages"] != 1 {
		t.Errorf("stats = %v", rep.Stats)
	}
}

// TestScanDirs: /... expansion skips testdata and finds real packages.
func TestScanDirs(t *testing.T) {
	dirs, err := ScanDirs([]string{filepath.Join("..", "..") + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, d := range dirs {
		found[filepath.ToSlash(d)] = true
		if strings.Contains(d, "testdata") {
			t.Errorf("ScanDirs descended into testdata: %s", d)
		}
	}
	if !found["../../internal/srcvet"] {
		t.Errorf("ScanDirs missed internal/srcvet: %v", dirs)
	}
}

// TestUnifiedDiff pins the hunk format on a small edit.
func TestUnifiedDiff(t *testing.T) {
	a := "l1\nl2\nl3\nl4\nl5\nl6\nl7\n"
	b := "l1\nl2\nl3\nNEW\nl4\nl5\nl6\nl7\n"
	d := UnifiedDiff("f.go", a, b)
	want := "--- f.go\n+++ f.go (padded)\n@@ -1,6 +1,7 @@\n l1\n l2\n l3\n+NEW\n l4\n l5\n l6\n"
	if d != want {
		t.Errorf("diff mismatch\n--- want\n%s--- got\n%s", want, d)
	}
	if UnifiedDiff("f.go", a, a) != "" {
		t.Error("identical inputs should produce an empty diff")
	}
}
