package srcvet

import (
	"fmt"
	"os"
	"strings"
)

// ParseWaiverFile reads a waiver file: one finding ID per line, optionally
// followed by a justification, with '#' comments and blank lines ignored.
//
//	# intentional fixture, exercised by internal/srcvet tests
//	testdata/srcvet/packed:p@packed.go:15:line0  seeded bug corpus
func ParseWaiverFile(path string) (map[string]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for ln, line := range strings.Split(string(b), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		id, reason, _ := strings.Cut(line, " ")
		if !strings.Contains(id, ":line") {
			return nil, fmt.Errorf("%s:%d: %q is not a finding ID (<pkg>:<region>:line<N>)", path, ln+1, id)
		}
		out[id] = strings.TrimSpace(reason)
	}
	return out, nil
}
