// Package srcvet is the source-level false-sharing analyzer: it points
// TMI's detect→repair loop at real Go packages that have never executed.
//
// Where tmilint (internal/analysis) abstractly interprets programs written
// against the internal workload DSL, srcvet type-checks arbitrary Go source
// with go/types, computes exact field offsets and sizes under
// types.StdSizes{WordSize: 8, MaxAlign: 8}, and maps every struct and
// written region onto 64-byte cache lines — the layout pass. An ownership
// pass then walks the AST to infer per-goroutine writers: fields written
// inside distinct `go` statements, slices and arrays of sub-line elements
// indexed by a worker-loop variable, writes serialized under a held
// sync.Mutex (one logical writer per critical section), and the lock words
// themselves, which every contending goroutine hammers. A line with two or
// more inferred writers on disjoint bytes is flagged with the same
// classifier the dynamic detector applies to PEBS samples
// (analysis.ClassifyLine).
//
// Because the ownership heuristics are necessarily unsound (see DESIGN
// §14), every finding can be cross-checked by the confirmation bridge:
// the flagged line is lowered to a tmi/workload program — one disasm site
// per field, one simulated thread per inferred writer — and run through
// both the static model (analysis.BuildModel) and the dynamic PEBS/HITM
// detector (tmi.Run, TMIDetect). Findings the dynamic detector reproduces
// are graded "confirmed"; the rest stay "static-only", exactly like
// tmilint's recall comparison.
//
// The repair planner computes `_ [N]byte` padding insertions (and
// advisory field reorderings) that isolate each writer onto a private
// line; -fix renders them as a unified diff.
package srcvet

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
	"repro/internal/detect"
	"repro/internal/toolio"
)

// LineBytes is the modeled coherence granularity, matching the simulator.
const LineBytes = 64

// Sizes is the modeled target layout: 64-bit words, 8-byte max alignment —
// the same model the simulator's allocator uses.
var Sizes = types.StdSizes{WordSize: 8, MaxAlign: 8}

// Options configures an analysis run.
type Options struct {
	// Confirm runs every finding through the simulator confirmation
	// bridge (static model + dynamic detector).
	Confirm bool
	// Seed drives the confirmation runs' determinism (default 1).
	Seed int64
	// SpawnCount is the writer count assumed for worker-spawn loops whose
	// trip count is not a compile-time constant (default 4).
	SpawnCount int
	// MaxRegionLines caps how many 64-byte lines of one region are
	// classified (default 64 — one 4 KiB page); larger regions truncate.
	MaxRegionLines int
	// Waivers holds finding IDs suppressed by the waiver file.
	Waivers map[string]string
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SpawnCount <= 0 {
		o.SpawnCount = 4
	}
	if o.MaxRegionLines <= 0 {
		o.MaxRegionLines = 64
	}
	return o
}

// WriterInfo describes one inferred writer's footprint on a flagged line.
type WriterInfo struct {
	// Desc names the writer: "go file:line", "go file:line[k]" for the
	// k-th goroutine of a spawn loop, "critsec(mu)" for writes serialized
	// under a held lock, "lock-word(mu)" for the lock word itself, and
	// "caller file:line" for the spawning goroutine.
	Desc string
	// Refs are the writer's byte ranges on the line, line-relative.
	Refs []ByteRange
	// Atomic marks a writer whose accesses go through sync/atomic.
	Atomic bool
}

// ByteRange is one written [Off, Off+Size) span, with the source path that
// produced it ("Counters[i]", "Stats.Hits").
type ByteRange struct {
	Off  int64
	Size int64
	Path string
}

// Finding is one flagged cache line of one region.
type Finding struct {
	// ID is the stable waiver key "<pkg>:<region>:line<N>".
	ID string
	// Pkg is the scanned package's display path.
	Pkg string
	// Region names the struct type or root variable.
	Region string
	// Pos locates the region's declaration.
	Pos token.Position
	// LineIndex is the 64-byte line index within the region layout.
	LineIndex int
	// Class is the shared classifier's verdict (always SharingFalse for
	// emitted findings; true-sharing lines are counted, not flagged).
	Class detect.Sharing
	// Writers lists the inferred writers, ordered by first byte.
	Writers []WriterInfo
	// Repairs are the computed source edits for the whole region (shared
	// by all of its findings; populated on the first).
	Repairs []Repair
	// Confirmation is the bridge grade (toolio.Confirm*).
	Confirmation string
	// Waived marks a finding suppressed by the waiver file.
	Waived bool

	region *region // for the bridge and the fixer
}

// Spans renders the writers' byte ranges, e.g. "0-7 vs 8-15".
func (f *Finding) Spans() string {
	parts := make([]string, 0, len(f.Writers))
	for _, w := range f.Writers {
		lo, hi := int64(1)<<62, int64(-1)
		for _, r := range w.Refs {
			if r.Off < lo {
				lo = r.Off
			}
			if r.Off+r.Size-1 > hi {
				hi = r.Off + r.Size - 1
			}
		}
		if hi < 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%d-%d", lo, hi))
	}
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " vs "
		}
		out += p
	}
	return out
}

// Result is the outcome of analyzing a set of packages.
type Result struct {
	Findings []*Finding
	// Packages/Regions/TrueLines are scan counters: packages loaded,
	// written regions assembled, lines classified as true sharing (not
	// flagged — genuinely shared data is not a layout bug).
	Packages  int
	Regions   int
	TrueLines int
	// Errors holds per-package load failures (the scan continues).
	Errors []error
}

// OK reports whether every finding is waived.
func (r *Result) OK() bool {
	for _, f := range r.Findings {
		if !f.Waived {
			return false
		}
	}
	return len(r.Errors) == 0
}

// Report converts the result to the shared toolio schema.
func (r *Result) Report() *toolio.VetReport {
	rep := toolio.NewVetReport("tmivet")
	for _, f := range r.Findings {
		vf := toolio.VetFinding{
			ID:           f.ID,
			Pkg:          f.Pkg,
			Region:       f.Region,
			File:         f.Pos.Filename,
			Line:         f.Pos.Line,
			CacheLine:    f.LineIndex,
			Spans:        f.Spans(),
			Confirmation: f.Confirmation,
			Waived:       f.Waived,
		}
		for _, w := range f.Writers {
			vf.Writers = append(vf.Writers, w.Desc)
		}
		for _, rp := range f.Repairs {
			vf.Repairs = append(vf.Repairs, toolio.VetRepair{
				Kind: rp.Kind, Struct: rp.Struct, After: rp.After,
				Bytes: rp.Bytes, Detail: rp.Detail,
			})
		}
		rep.Add(vf)
	}
	rep.AddStat("packages", float64(r.Packages))
	rep.AddStat("regions", float64(r.Regions))
	rep.AddStat("true_lines", float64(r.TrueLines))
	rep.AddStat("findings", float64(len(r.Findings)))
	for _, err := range r.Errors {
		// Load errors surface as synthetic findings so CI cannot miss them.
		rep.Add(toolio.VetFinding{
			ID: "error", Region: "load", Confirmation: toolio.ConfirmSkipped,
			Spans: err.Error(),
		})
	}
	return rep
}

// Analyze runs the layout and ownership passes over the given loaded
// packages and classifies every written region, then (with opt.Confirm)
// grades each finding through the simulator bridge.
func Analyze(pkgs []*Package, opt Options) *Result {
	opt = opt.withDefaults()
	res := &Result{Packages: len(pkgs)}
	for _, pkg := range pkgs {
		regions := inferOwnership(pkg, opt)
		res.Regions += len(regions)
		for _, rg := range regions {
			findings, trueLines := classifyRegion(pkg, rg, opt)
			res.TrueLines += trueLines
			res.Findings = append(res.Findings, findings...)
		}
	}
	sort.Slice(res.Findings, func(i, j int) bool { return res.Findings[i].ID < res.Findings[j].ID })
	for _, f := range res.Findings {
		if w, ok := opt.Waivers[f.ID]; ok {
			_ = w
			f.Waived = true
		}
		switch {
		case !opt.Confirm || f.Waived:
			f.Confirmation = toolio.ConfirmSkipped
		default:
			f.Confirmation = confirm(f, opt.Seed)
		}
	}
	return res
}

// classifyRegion maps one region's writer refs onto 64-byte lines and
// classifies each line with the shared classifier.
func classifyRegion(pkg *Package, rg *region, opt Options) ([]*Finding, int) {
	type lineAcc struct {
		foots   map[int]*analysis.Foot
		writers map[int]*WriterInfo
	}
	lines := map[int64]*lineAcc{}
	maxLine := int64(opt.MaxRegionLines)
	for wid, w := range rg.writers {
		for _, ref := range w.refs {
			lo, hi := ref.off, ref.off+ref.size
			if lo < 0 || hi <= lo {
				continue
			}
			for b := lo; b < hi; b++ {
				li := b / LineBytes
				if li >= maxLine {
					break
				}
				la := lines[li]
				if la == nil {
					la = &lineAcc{foots: map[int]*analysis.Foot{}, writers: map[int]*WriterInfo{}}
					lines[li] = la
				}
				ft := la.foots[wid]
				if ft == nil {
					ft = &analysis.Foot{}
					la.foots[wid] = ft
					la.writers[wid] = &WriterInfo{Desc: w.desc, Atomic: w.atomic}
				}
				bit := uint(b % LineBytes)
				if ft.WriteMask&(1<<bit) == 0 {
					ft.WriteMask |= 1 << bit
				}
				ft.Writes++
			}
			// Record the line-relative range(s) on every line touched.
			for li := lo / LineBytes; li <= (hi-1)/LineBytes && li < maxLine; li++ {
				la := lines[li]
				wi := la.writers[wid]
				rlo := max64(lo, li*LineBytes) - li*LineBytes
				rhi := min64(hi, (li+1)*LineBytes) - li*LineBytes
				wi.Refs = append(wi.Refs, ByteRange{Off: rlo, Size: rhi - rlo, Path: ref.path})
			}
		}
	}

	var found []*Finding
	trueLines := 0
	idxs := make([]int64, 0, len(lines))
	for li := range lines {
		idxs = append(idxs, li)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, li := range idxs {
		la := lines[li]
		p := analysis.ClassifyLine(&analysis.LineModel{Line: uint64(li), PerThread: la.foots})
		switch p.Class {
		case detect.SharingTrue:
			trueLines++
		case detect.SharingFalse:
			f := &Finding{
				ID:        fmt.Sprintf("%s:%s:line%d", pkg.Rel, rg.name, li),
				Pkg:       pkg.Rel,
				Region:    rg.name,
				Pos:       pkg.Fset.Position(rg.pos),
				LineIndex: int(li),
				Class:     detect.SharingFalse,
				region:    rg,
			}
			wids := make([]int, 0, len(la.writers))
			for wid := range la.writers {
				wids = append(wids, wid)
			}
			sort.Slice(wids, func(i, j int) bool {
				return firstByte(la.writers[wids[i]]) < firstByte(la.writers[wids[j]])
			})
			for _, wid := range wids {
				f.Writers = append(f.Writers, *dedupRefs(la.writers[wid]))
			}
			found = append(found, f)
		}
	}
	if len(found) > 0 {
		repairs := planRepairs(pkg, rg, found)
		found[0].Repairs = repairs
	}
	return found, trueLines
}

func firstByte(w *WriterInfo) int64 {
	lo := int64(1) << 62
	for _, r := range w.Refs {
		if r.Off < lo {
			lo = r.Off
		}
	}
	return lo
}

// dedupRefs collapses duplicate (Off,Size,Path) ranges accumulated across
// loop iterations of the scan.
func dedupRefs(w *WriterInfo) *WriterInfo {
	seen := map[ByteRange]bool{}
	out := w.Refs[:0]
	for _, r := range w.Refs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	w.Refs = out
	sort.Slice(w.Refs, func(i, j int) bool {
		if w.Refs[i].Off != w.Refs[j].Off {
			return w.Refs[i].Off < w.Refs[j].Off
		}
		return w.Refs[i].Path < w.Refs[j].Path
	})
	return w
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
