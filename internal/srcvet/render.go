package srcvet

// Human rendering of a result: one block per finding, deterministic, used
// verbatim by the golden fixture tests (wall-clock time is deliberately
// not part of this rendering).

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Render writes the deterministic human report.
func Render(w io.Writer, res *Result) {
	for _, f := range res.Findings {
		status := strings.ToUpper(f.Class.String())
		tag := f.Confirmation
		if f.Waived {
			tag += ", waived"
		}
		fmt.Fprintf(w, "%s: %s (%s:%d) line %d: %s sharing — %d writers on disjoint bytes [%s] (%s)\n",
			f.Pkg, f.Region, baseName(f.Pos.Filename), f.Pos.Line, f.LineIndex,
			status, len(f.Writers), f.Spans(), tag)
		for _, wr := range f.Writers {
			fmt.Fprintf(w, "    writer %-24s writes %s\n", wr.Desc, renderRefs(wr.Refs))
		}
		for _, r := range f.Repairs {
			fmt.Fprintf(w, "    repair: %s\n", r)
		}
	}
	for _, err := range res.Errors {
		fmt.Fprintf(w, "error: %v\n", err)
	}
}

func renderRefs(refs []ByteRange) string {
	// Group by path, then render each path's ranges.
	byPath := map[string][]ByteRange{}
	var order []string
	for _, r := range refs {
		if _, ok := byPath[r.Path]; !ok {
			order = append(order, r.Path)
		}
		byPath[r.Path] = append(byPath[r.Path], r)
	}
	sort.Strings(order)
	var parts []string
	for _, path := range order {
		rs := byPath[path]
		spans := make([]string, len(rs))
		for i, r := range rs {
			spans[i] = fmt.Sprintf("[%d,%d)", r.Off, r.Off+r.Size)
		}
		parts = append(parts, fmt.Sprintf("%s %s", path, strings.Join(spans, " ")))
	}
	return strings.Join(parts, ", ")
}

// Summary renders the one-line scan summary (not part of the goldens).
func Summary(res *Result) string {
	confirmed, staticOnly, waived := 0, 0, 0
	for _, f := range res.Findings {
		switch {
		case f.Waived:
			waived++
		case f.Confirmation == "confirmed":
			confirmed++
		default:
			staticOnly++
		}
	}
	return fmt.Sprintf("tmivet: %d package(s), %d region(s), %d finding(s) (%d confirmed, %d static-only, %d waived), %d true-sharing line(s)",
		res.Packages, res.Regions, len(res.Findings), confirmed, staticOnly, waived, res.TrueLines)
}
