package srcvet

// The confirmation bridge: lower a flagged cache line into a tmi/workload
// program — one disasm site per written field range, one simulated thread
// per inferred writer — and run it through the static model
// (analysis.BuildModel) and the dynamic PEBS/HITM detector (tmi.Run under
// TMIDetect). A finding the dynamic detector reproduces is graded
// "confirmed"; one only the static layout flags stays "static-only".
// This is the same recall vocabulary tmilint uses for its predictor.

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/detect"
	"repro/internal/toolio"
	"repro/tmi"
	"repro/tmi/workload"
)

// Bridge workload intensity: enough stores per detection window for the
// sampler (period 100, MinRecords 8) to classify the line, with a little
// interleaved compute so the access stream resembles a real loop.
const (
	bridgeIters = 30_000
	bridgeWork  = 20
)

// synthWorkload is the lowered program for one flagged line.
type synthWorkload struct {
	name    string
	writers []WriterInfo

	base  uint64
	sites [][]workload.Site
}

var _ workload.Workload = (*synthWorkload)(nil)

func (s *synthWorkload) Name() string { return s.name }

func (s *synthWorkload) Info() workload.Info {
	return workload.Info{
		Threads:         len(s.writers),
		HasFalseSharing: true,
		Desc:            "srcvet confirmation bridge program",
	}
}

func (s *synthWorkload) Setup(env workload.Env) error {
	s.base = env.Alloc(LineBytes, LineBytes)
	s.sites = make([][]workload.Site, len(s.writers))
	for i, w := range s.writers {
		for j, ref := range w.Refs {
			width := storeWidth(ref)
			site := env.Site(fmt.Sprintf("srcvet.w%d.r%d", i, j), workload.SiteStore, width)
			s.sites[i] = append(s.sites[i], site)
		}
	}
	return nil
}

func (s *synthWorkload) Body(t workload.Thread) {
	w := s.writers[t.ID()]
	sites := s.sites[t.ID()]
	for i := 0; i < bridgeIters; i++ {
		for j, ref := range w.Refs {
			t.Store(sites[j], s.base+uint64(ref.Off), uint64(i+1))
			t.Work(bridgeWork)
		}
	}
}

func (s *synthWorkload) Validate(env workload.Env) error { return nil }

// storeWidth picks the widest aligned power-of-two access that fits the
// written range.
func storeWidth(r ByteRange) int {
	for _, w := range []int64{8, 4, 2, 1} {
		if r.Size >= w && r.Off%w == 0 {
			return int(w)
		}
	}
	return 1
}

// bridgeWriters filters a finding's writers down to the ones the synth
// program can model: non-empty footprints, at most 8 threads.
func bridgeWriters(f *Finding) []WriterInfo {
	var out []WriterInfo
	for _, w := range f.Writers {
		keep := WriterInfo{Desc: w.Desc, Atomic: w.Atomic}
		for _, r := range w.Refs {
			if r.Size > 0 {
				keep.Refs = append(keep.Refs, r)
			}
		}
		if len(keep.Refs) > 0 {
			out = append(out, keep)
		}
		if len(out) == maxSpawnWriters {
			break
		}
	}
	return out
}

// confirm grades one finding through the bridge.
func confirm(f *Finding, seed int64) string {
	writers := bridgeWriters(f)
	if len(writers) < 2 {
		return toolio.ConfirmSkipped
	}
	mk := func() *synthWorkload {
		return &synthWorkload{name: "srcvet-" + f.Region, writers: writers}
	}

	// Static cross-check: the lowered program must re-flag under the
	// layout model; a disagreement means the lowering (not the source
	// analysis) is wrong, which we surface as static-only.
	m, err := analysis.BuildModel(mk(), analysis.Options{Seed: seed})
	if err != nil || !hasFalseLine(m.PredictLines()) {
		return toolio.ConfirmStaticOnly
	}

	dyn := mk()
	rep, err := tmi.Run(dyn, tmi.Config{System: tmi.TMIDetect, Seed: seed})
	if err != nil {
		return toolio.ConfirmStaticOnly
	}
	lineAddr := dyn.base &^ (LineBytes - 1)
	for _, lr := range rep.Lines {
		if lr.Class == detect.SharingFalse && lr.Line == lineAddr {
			return toolio.ConfirmConfirmed
		}
	}
	return toolio.ConfirmStaticOnly
}

func hasFalseLine(preds []analysis.LinePrediction) bool {
	for _, p := range preds {
		if p.Class == detect.SharingFalse {
			return true
		}
	}
	return false
}
