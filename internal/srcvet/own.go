package srcvet

// The ownership pass: walk the AST to infer which goroutine writes which
// bytes of which shared region. A "writer" is the unit the classifier
// treats as one cache-line owner:
//
//   - each distinct `go` statement is one writer; a `go` inside a worker-
//     spawn loop expands into K writers (the loop's constant trip count,
//     or Options.SpawnCount), and array/slice accesses indexed by the
//     loop variable stride across elements — the ping-pong shape;
//   - writes made while a sync.Mutex is held collapse into ONE serialized
//     writer per lock (the lock owner changes over time but never writes
//     concurrently with itself);
//   - the lock word itself is a synthetic writer: every contending
//     goroutine CASes it, so a mutex co-resident with hot data bounces
//     the line exactly like a data writer would;
//   - writes the spawning function makes after its first `go` statement
//     (and before a join: WaitGroup.Wait or a channel receive) are the
//     "caller" writer.
//
// The pass is heuristic and unsound by design — see DESIGN §14 for the
// full list of approximations; the confirmation bridge exists to grade
// what it infers.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

const maxSpawnWriters = 8

type regionRef struct {
	off  int64
	size int64
	path string
}

type writerAcc struct {
	desc   string
	atomic bool
	refs   []regionRef
}

type writerKey struct {
	kind string // "go", "caller", "critsec", "lockword"
	pos  token.Pos
	elem int
	lock string
}

type region struct {
	name    string
	root    types.Object
	typ     types.Type // deref'd root type
	pos     token.Pos
	pkg     *Package
	byKey   map[writerKey]int
	wids    []writerKey
	writers map[int]*writerAcc
}

func (rg *region) writer(k writerKey, desc string, atomic bool) *writerAcc {
	id, ok := rg.byKey[k]
	if !ok {
		id = len(rg.wids)
		rg.byKey[k] = id
		rg.wids = append(rg.wids, k)
		rg.writers[id] = &writerAcc{desc: desc, atomic: atomic}
	}
	w := rg.writers[id]
	if atomic {
		w.atomic = true
	}
	return w
}

// goCtx is one scanning context: a goroutine body (or a caller tail) with
// its parameter bindings and per-goroutine-distinct index variables.
type goCtx struct {
	kind     string // "go" or "caller"
	pos      token.Pos
	desc     string
	body     ast.Node
	bind     map[types.Object]ast.Expr
	distinct map[types.Object]bool
	spawnK   int
}

type pass struct {
	pkg       *Package
	opt       Options
	regions   map[types.Object]*region
	funcDecls map[types.Object]*ast.FuncDecl
}

// inferOwnership runs the ownership pass over one package and returns the
// written regions in deterministic order.
func inferOwnership(pkg *Package, opt Options) []*region {
	p := &pass{
		pkg:       pkg,
		opt:       opt,
		regions:   map[types.Object]*region{},
		funcDecls: map[types.Object]*ast.FuncDecl{},
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					p.funcDecls[obj] = fd
				}
			}
		}
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				p.scanFunc(fd)
			}
		}
	}
	var out []*region
	for _, rg := range p.regions {
		if len(rg.writers) > 0 {
			out = append(out, rg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

type loopInfo struct {
	vars []types.Object
	trip int
}

// scanFunc finds the `go` statements of one function (with their enclosing
// spawn loops), scans each goroutine body, and scans the caller tail.
func (p *pass) scanFunc(fd *ast.FuncDecl) {
	var loops []loopInfo
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, forLoopInfo(p.pkg, n))
			ast.Inspect(n.Body, walk)
			if n.Init != nil {
				ast.Inspect(n.Init, walk)
			}
			loops = loops[:len(loops)-1]
			return false
		case *ast.RangeStmt:
			loops = append(loops, rangeLoopInfo(p.pkg, n))
			ast.Inspect(n.Body, walk)
			loops = loops[:len(loops)-1]
			return false
		case *ast.GoStmt:
			p.scanGo(n, append([]loopInfo(nil), loops...))
			// Nested `go` statements inside the spawned body are handled
			// by this same walk (the body is part of the function's AST).
			return true
		case *ast.FuncLit:
			// Keep walking: a `go` inside a closure still spawns.
			return true
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	p.scanCallerTail(fd)
}

func forLoopInfo(pkg *Package, n *ast.ForStmt) loopInfo {
	li := loopInfo{}
	var loopVar types.Object
	if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
		for _, lhs := range init.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := pkg.Info.Defs[id]; obj != nil {
					li.vars = append(li.vars, obj)
					loopVar = obj
				}
			}
		}
	}
	// `for i := 0; i < N; i++` with constant N: trip count N.
	if cond, ok := n.Cond.(*ast.BinaryExpr); ok && loopVar != nil && (cond.Op == token.LSS || cond.Op == token.LEQ) {
		if id, ok := cond.X.(*ast.Ident); ok && pkg.Info.Uses[id] == loopVar {
			if tv, ok := pkg.Info.Types[cond.Y]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
				if v, ok := constant.Int64Val(tv.Value); ok && v > 0 && v < 1<<20 {
					li.trip = int(v)
					if cond.Op == token.LEQ {
						li.trip++
					}
				}
			}
		}
	}
	return li
}

func rangeLoopInfo(pkg *Package, n *ast.RangeStmt) loopInfo {
	li := loopInfo{}
	if id, ok := n.Key.(*ast.Ident); ok && n.Tok == token.DEFINE {
		if obj := pkg.Info.Defs[id]; obj != nil {
			li.vars = append(li.vars, obj)
		}
	}
	if tv, ok := pkg.Info.Types[n.X]; ok {
		if arr, ok := deref(tv.Type).Underlying().(*types.Array); ok && arr.Len() > 0 && arr.Len() < 1<<20 {
			li.trip = int(arr.Len())
		}
	}
	return li
}

// scanGo resolves one `go` statement into a scanning context and scans it.
func (p *pass) scanGo(g *ast.GoStmt, loops []loopInfo) {
	pos := p.pkg.Fset.Position(g.Pos())
	ctx := &goCtx{
		kind:     "go",
		pos:      g.Pos(),
		desc:     fmt.Sprintf("go %s:%d", baseName(pos.Filename), pos.Line),
		bind:     map[types.Object]ast.Expr{},
		distinct: map[types.Object]bool{},
		spawnK:   1,
	}
	if len(loops) > 0 {
		inner := loops[len(loops)-1]
		ctx.spawnK = inner.trip
		if ctx.spawnK <= 0 {
			ctx.spawnK = p.opt.SpawnCount
		}
		if ctx.spawnK > maxSpawnWriters {
			ctx.spawnK = maxSpawnWriters
		}
		for _, l := range loops {
			for _, v := range l.vars {
				ctx.distinct[v] = true
			}
		}
	}

	call := g.Call
	var params *ast.FieldList
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		ctx.body = fun.Body
		params = fun.Type.Params
	case *ast.Ident:
		obj := p.pkg.Info.Uses[fun]
		fd := p.funcDecls[obj]
		if fd == nil {
			return
		}
		ctx.body = fd.Body
		params = fd.Type.Params
	case *ast.SelectorExpr:
		sel := p.pkg.Info.Selections[fun]
		if sel == nil || sel.Kind() != types.MethodVal {
			return
		}
		fd := p.funcDecls[sel.Obj()]
		if fd == nil {
			return
		}
		ctx.body = fd.Body
		params = fd.Type.Params
		if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
			if robj := p.pkg.Info.Defs[fd.Recv.List[0].Names[0]]; robj != nil {
				ctx.bind[robj] = fun.X
			}
		}
	default:
		return
	}
	bindParams(p.pkg, ctx, params, call.Args)
	p.scanWrites(ctx)
}

// bindParams maps the spawned function's parameter objects to the call-site
// argument expressions, and marks parameters bound to per-goroutine loop
// indices as distinct.
func bindParams(pkg *Package, ctx *goCtx, params *ast.FieldList, args []ast.Expr) {
	if params == nil {
		return
	}
	i := 0
	for _, field := range params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for _, name := range field.Names {
			if i >= len(args) {
				return
			}
			obj := pkg.Info.Defs[name]
			if obj == nil {
				i++
				continue
			}
			arg := ast.Unparen(args[i])
			if id, ok := arg.(*ast.Ident); ok {
				if ctx.distinct[pkg.Info.Uses[id]] {
					ctx.distinct[obj] = true
					i++
					continue
				}
			}
			ctx.bind[obj] = args[i]
			i++
		}
		if len(field.Names) == 0 {
			i += n
		}
	}
}

// scanCallerTail treats the spawning function's own writes, lexically after
// its first `go` statement and before a join point (WaitGroup.Wait or a
// channel receive), as one more concurrent writer.
func (p *pass) scanCallerTail(fd *ast.FuncDecl) {
	pos := p.pkg.Fset.Position(fd.Pos())
	spawned := false
	for _, stmt := range fd.Body.List {
		switch s := stmt.(type) {
		case *ast.GoStmt:
			spawned = true
			continue
		default:
			if containsGo(stmt) {
				spawned = true
				continue
			}
			if isJoin(p.pkg, stmt) {
				spawned = false
				continue
			}
			if !spawned {
				continue
			}
			ctx := &goCtx{
				kind:     "caller",
				pos:      fd.Pos(),
				desc:     fmt.Sprintf("caller %s:%d", baseName(pos.Filename), pos.Line),
				bind:     map[types.Object]ast.Expr{},
				distinct: map[types.Object]bool{},
				spawnK:   1,
				body:     s,
			}
			p.scanWrites(ctx)
		}
	}
}

func containsGo(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// isJoin recognizes the common join idioms at statement level.
func isJoin(pkg *Package, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		switch e := ast.Unparen(s.X).(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if tv, ok := pkg.Info.Types[sel.X]; ok && isSyncType(tv.Type, "WaitGroup") {
					return true
				}
			}
		case *ast.UnaryExpr:
			return e.Op == token.ARROW
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return true
			}
		}
	case *ast.RangeStmt:
		if tv, ok := pkg.Info.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return true
			}
		}
	}
	return false
}

// scanWrites walks one context's body, tracking held locks, and records
// every write it can resolve to a shared region.
func (p *pass) scanWrites(ctx *goCtx) {
	var held []string // lock paths, innermost last
	ast.Inspect(ctx.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// `defer mu.Unlock()` keeps the lock held for the rest of the
			// body; suppressing the call models exactly that.
			return false
		case *ast.FuncLit:
			// A nested closure not passed to `go` runs on this goroutine;
			// keep scanning it.
			return true
		case *ast.GoStmt:
			// Nested spawns were handled by scanFunc's walk.
			return false
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				p.recordWrite(ctx, lhs, held, false)
			}
			return true
		case *ast.IncDecStmt:
			p.recordWrite(ctx, n.X, held, false)
			return true
		case *ast.CallExpr:
			p.scanCall(ctx, n, &held)
			return true
		}
		return true
	})
}

// scanCall handles the call-shaped writes and the lock protocol:
// sync/atomic package functions, atomic.TYPE methods, and Mutex/RWMutex
// Lock/Unlock (which also feed the synthetic lock-word writer).
func (p *pass) scanCall(ctx *goCtx, call *ast.CallExpr, held *[]string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// atomic.AddUint64(&x.f, 1) and friends.
	if obj := p.pkg.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
		if isAtomicWriteFn(sel.Sel.Name) && len(call.Args) > 0 {
			if u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && u.Op == token.AND {
				p.recordWrite(ctx, u.X, *held, true)
			}
		}
		return
	}
	msel := p.pkg.Info.Selections[sel]
	if msel == nil || msel.Kind() != types.MethodVal {
		return
	}
	recvT := deref(msel.Recv())
	switch {
	case isSyncType(recvT, "Mutex"), isSyncType(recvT, "RWMutex"):
		p.scanLockCall(ctx, sel, recvT, held)
	case isAtomicType(recvT):
		if isAtomicWriteMethod(sel.Sel.Name) {
			p.recordWrite(ctx, sel.X, *held, true)
		}
	}
}

func (p *pass) scanLockCall(ctx *goCtx, sel *ast.SelectorExpr, recvT types.Type, held *[]string) {
	r := p.resolveExpr(sel.X, ctx)
	if !r.ok || r.root == nil || localToCtx(ctx, r.root) {
		return
	}
	path := r.path
	switch sel.Sel.Name {
	case "Lock", "TryLock", "RLock", "TryRLock":
		// The lock word is written by every contending goroutine: one
		// synthetic writer, only meaningful in "go" contexts (a lock taken
		// solely by the caller never bounces).
		if ctx.kind == "go" {
			rg := p.regionFor(r.root)
			if rg != nil {
				w := rg.writer(writerKey{kind: "lockword", lock: path}, fmt.Sprintf("lock-word(%s)", path), true)
				w.refs = append(w.refs, regionRef{off: r.off, size: sizeOf(recvT), path: path})
			}
		}
		if sel.Sel.Name == "Lock" || sel.Sel.Name == "TryLock" {
			*held = append(*held, path)
		}
	case "Unlock":
		for i := len(*held) - 1; i >= 0; i-- {
			if (*held)[i] == path {
				*held = append((*held)[:i], (*held)[i+1:]...)
				break
			}
		}
	}
}

func isAtomicWriteFn(name string) bool {
	for _, prefix := range []string{"Add", "Store", "Swap", "CompareAndSwap", "Or", "And"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func isAtomicWriteMethod(name string) bool {
	switch name {
	case "Add", "Store", "Swap", "CompareAndSwap", "Or", "And":
		return true
	}
	return false
}

// localToCtx reports whether obj is declared inside the scanned body
// itself. Such variables are per-goroutine by construction (each spawned
// goroutine gets its own instance), so they can never be shared regions —
// without this check every `for s := ...; s++` loop counter inside a spawn
// body would look like K goroutines hammering one variable.
func localToCtx(ctx *goCtx, obj types.Object) bool {
	if ctx.body == nil {
		return false
	}
	return obj.Pos() >= ctx.body.Pos() && obj.Pos() < ctx.body.End()
}

// recordWrite resolves one write target and accumulates it into its
// region under the right writer identity.
func (p *pass) recordWrite(ctx *goCtx, target ast.Expr, held []string, atomic bool) {
	r := p.resolveExpr(target, ctx)
	if !r.ok || r.root == nil || localToCtx(ctx, r.root) {
		return
	}
	rg := p.regionFor(r.root)
	if rg == nil {
		return
	}
	size := r.size
	if size < 0 {
		size = 0
	}
	switch {
	case len(held) > 0:
		// Serialized under a lock: one logical writer per lock, shared by
		// every goroutine that takes it.
		lock := held[len(held)-1]
		w := rg.writer(writerKey{kind: "critsec", lock: lock}, fmt.Sprintf("critsec(%s)", lock), atomic)
		w.refs = append(w.refs, regionRef{off: r.off, size: size, path: r.path})
	case ctx.kind == "go" && ctx.spawnK > 1:
		for k := 0; k < ctx.spawnK; k++ {
			off := r.off + int64(k)*r.stride
			w := rg.writer(writerKey{kind: "go", pos: ctx.pos, elem: k}, fmt.Sprintf("%s[%d]", ctx.desc, k), atomic)
			w.refs = append(w.refs, regionRef{off: off, size: size, path: r.path})
		}
	default:
		w := rg.writer(writerKey{kind: ctx.kind, pos: ctx.pos, elem: -1}, ctx.desc, atomic)
		w.refs = append(w.refs, regionRef{off: r.off, size: size, path: r.path})
	}
}

// regionFor returns (creating on demand) the region rooted at obj, or nil
// for roots that cannot be a shared data region (functions, packages,
// non-addressable objects).
func (p *pass) regionFor(obj types.Object) *region {
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	if rg, ok := p.regions[obj]; ok {
		return rg
	}
	t := deref(v.Type())
	switch t.Underlying().(type) {
	case *types.Struct, *types.Array, *types.Slice, *types.Basic:
	default:
		return nil
	}
	name := v.Name()
	if v.Parent() != p.pkg.Types.Scope() {
		pos := p.pkg.Fset.Position(v.Pos())
		name = fmt.Sprintf("%s@%s:%d", v.Name(), baseName(pos.Filename), pos.Line)
	}
	rg := &region{
		name:    name,
		root:    obj,
		typ:     t,
		pos:     v.Pos(),
		pkg:     p.pkg,
		byKey:   map[writerKey]int{},
		writers: map[int]*writerAcc{},
	}
	p.regions[obj] = rg
	return rg
}

func baseName(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
