//go:build race

// Package raceflag reports whether the race detector is compiled in, so
// allocation-guard tests can skip themselves: -race instruments allocations
// and makes testing.AllocsPerRun meaningless.
package raceflag

// Enabled is true when the build includes the race detector.
const Enabled = true
