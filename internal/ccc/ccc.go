// Package ccc implements code-centric consistency (paper §3.4): the insight
// that a single program mixes code regions governed by different memory
// consistency models — regular C/C++, C/C++ atomics, and inline assembly —
// and that a runtime optimization like the PTSB is legal in some regions
// and not others.
//
// The controller consumes the region callbacks that the paper's LLVM pass
// inserts (emitted here by the workload framework) and enforces the Table 2
// policy:
//
//   - regular x regular / regular x atomic: data races have undefined
//     semantics, so PTSB use is permitted (Lemma 3.1 covers the race-free
//     case);
//   - atomic x atomic: atomicity is required; atomics always operate
//     directly on shared memory, and non-relaxed orders flush and disable
//     the PTSB for the region's duration;
//   - anything x assembly: assembly guarantees TSO-style AMBSA, so the PTSB
//     is flushed and disabled for the whole region.
//
// With the controller disabled (Sheriff's design) atomics and assembly run
// through the PTSB like regular code — and their semantics genuinely break
// in this simulator, reproducing Figures 3, 11 and 12.
package ccc

import (
	"repro/internal/sim/machine"
	"repro/internal/sim/mem"
)

// Flusher commits a thread's PTSB and returns the cycle cost.
type Flusher interface {
	Commit(t *machine.Thread) int64
}

// Stats counts controller activity. StrongRegions is the legacy aggregate
// of every non-relaxed atomic region entry (acquire + release + acq_rel +
// seq_cst), kept populated for pre-C11 readers; the per-ordering fields
// split the same entries out so /metrics and the Table 2 goldens can
// distinguish orderings.
type Stats struct {
	Flushes        uint64
	AsmRegions     uint64
	StrongRegions  uint64
	RelaxedRegions uint64

	AcquireRegions uint64
	ReleaseRegions uint64
	AcqRelRegions  uint64
	SeqCstRegions  uint64
	Fences         uint64
}

type threadState struct {
	asmDepth     int
	strongDepth  int
	relaxedDepth int
}

// Controller applies the code-centric consistency policy for one
// application.
type Controller struct {
	// Enabled selects TMI semantics; false reproduces Sheriff's
	// PTSB-everywhere-for-everything behavior.
	Enabled bool
	shared  *mem.AddrSpace
	engine  Flusher
	state   map[int]*threadState

	Stats Stats
}

// NewController builds a controller that routes protected accesses to the
// always-shared view and flushes through engine. engine may be nil when no
// PTSB is active (detection-only modes).
func NewController(enabled bool, shared *mem.AddrSpace, engine Flusher) *Controller {
	return &Controller{Enabled: enabled, shared: shared, engine: engine, state: make(map[int]*threadState)}
}

func (c *Controller) ts(t *machine.Thread) *threadState {
	s := c.state[t.ID]
	if s == nil {
		s = &threadState{}
		c.state[t.ID] = s
	}
	return s
}

func (c *Controller) flush(t *machine.Thread) {
	if c.engine != nil {
		if cost := c.engine.Commit(t); cost > 0 {
			t.AddCost(cost)
			c.Stats.Flushes++
		}
	}
}

// Enter handles a region-entry callback. Every non-relaxed ordering — and
// every standalone fence — flushes the PTSB on entry and disables it for the
// region's duration; under page twinning one commit both publishes this
// thread's buffered stores (release direction) and re-protects its private
// view so subsequent reads observe fresh shared data (acquire direction), so
// Table 2's strong-atomic row covers acquire, release, acq_rel and seq_cst
// alike. Relaxed atomics require only atomicity, which direct shared access
// provides; no flush (paper §3.4, case 2).
func (c *Controller) Enter(t *machine.Thread, k machine.RegionKind) {
	s := c.ts(t)
	switch {
	case k == machine.RegionAsm:
		c.Stats.AsmRegions++
		if c.Enabled {
			c.flush(t)
		}
		s.asmDepth++
	case k == machine.RegionAtomicRelaxed:
		c.Stats.RelaxedRegions++
		s.relaxedDepth++
	case k.IsFence():
		c.Stats.Fences++
		if c.Enabled {
			c.flush(t)
		}
		s.strongDepth++
	case k.IsAtomic():
		c.Stats.StrongRegions++ // legacy aggregate of all non-relaxed entries
		switch k {
		case machine.RegionAtomicAcquire:
			c.Stats.AcquireRegions++
		case machine.RegionAtomicRelease:
			c.Stats.ReleaseRegions++
		case machine.RegionAtomicAcqRel:
			c.Stats.AcqRelRegions++
		default:
			c.Stats.SeqCstRegions++
		}
		if c.Enabled {
			c.flush(t)
		}
		s.strongDepth++
	}
}

// Exit handles a region-exit callback.
func (c *Controller) Exit(t *machine.Thread, k machine.RegionKind) {
	s := c.ts(t)
	switch {
	case k == machine.RegionAsm:
		s.asmDepth--
	case k == machine.RegionAtomicRelaxed:
		s.relaxedDepth--
	default:
		s.strongDepth--
	}
}

// SpaceFor routes an access per the policy: inside disabled regions, and
// for atomic instructions generally, accesses go directly to the shared
// view. Returning nil keeps the thread's own (possibly PTSB-private) space.
func (c *Controller) SpaceFor(t *machine.Thread, acc *machine.Access) *mem.AddrSpace {
	if !c.Enabled {
		return nil
	}
	s := c.ts(t)
	if s.asmDepth > 0 || s.strongDepth > 0 {
		return c.shared
	}
	if acc.Atomic || s.relaxedDepth > 0 {
		return c.shared
	}
	return nil
}

// Disabled reports whether the thread is currently in a PTSB-disabled
// region.
func (c *Controller) Disabled(t *machine.Thread) bool {
	s := c.ts(t)
	return s.asmDepth > 0 || s.strongDepth > 0
}
