package ccc

import (
	"testing"

	"repro/internal/sim/machine"
	"repro/internal/sim/mem"
)

type fakeFlusher struct{ commits int }

func (f *fakeFlusher) Commit(t *machine.Thread) int64 {
	f.commits++
	return 100
}

func newThread() (*machine.Thread, *mem.AddrSpace) {
	m := mem.NewMemory(mem.PageSize4K)
	f := m.NewFile("x")
	as := mem.NewAddrSpace(m)
	as.Map(0, 4, f, 0, false, mem.ProtRW)
	mc := machine.New(machine.Config{Cores: 1, Seed: 1, Mem: m})
	mc.Thread(0).SetSpace(as)
	return mc.Thread(0), as
}

func TestAsmRegionFlushesAndDisables(t *testing.T) {
	th, _ := newThread()
	shared := mem.NewAddrSpace(mem.NewMemory(mem.PageSize4K))
	fl := &fakeFlusher{}
	c := NewController(true, shared, fl)

	if c.Disabled(th) {
		t.Fatal("fresh thread should not be disabled")
	}
	c.Enter(th, machine.RegionAsm)
	if fl.commits != 1 {
		t.Errorf("asm entry should flush, commits=%d", fl.commits)
	}
	if !c.Disabled(th) {
		t.Error("PTSB must be disabled inside asm")
	}
	if got := c.SpaceFor(th, &machine.Access{}); got != shared {
		t.Error("accesses inside asm must route to the shared view")
	}
	c.Exit(th, machine.RegionAsm)
	if c.Disabled(th) {
		t.Error("exit should re-enable")
	}
	if got := c.SpaceFor(th, &machine.Access{}); got != nil {
		t.Error("plain accesses outside regions keep the thread's space")
	}
}

func TestStrongAtomicFlushesRelaxedDoesNot(t *testing.T) {
	th, _ := newThread()
	shared := mem.NewAddrSpace(mem.NewMemory(mem.PageSize4K))
	fl := &fakeFlusher{}
	c := NewController(true, shared, fl)

	c.Enter(th, machine.RegionAtomicRelaxed)
	if fl.commits != 0 {
		t.Error("relaxed atomics must not flush (paper §3.4 case 2)")
	}
	if got := c.SpaceFor(th, &machine.Access{Atomic: true}); got != shared {
		t.Error("relaxed atomics still operate on shared memory")
	}
	c.Exit(th, machine.RegionAtomicRelaxed)

	c.Enter(th, machine.RegionAtomicStrong)
	if fl.commits != 1 {
		t.Error("strong atomics flush the PTSB")
	}
	c.Exit(th, machine.RegionAtomicStrong)
}

func TestAtomicAccessAlwaysRoutesShared(t *testing.T) {
	th, _ := newThread()
	shared := mem.NewAddrSpace(mem.NewMemory(mem.PageSize4K))
	c := NewController(true, shared, nil)
	if got := c.SpaceFor(th, &machine.Access{Atomic: true}); got != shared {
		t.Error("atomic instructions route to shared memory even outside regions")
	}
	if got := c.SpaceFor(th, &machine.Access{}); got != nil {
		t.Error("plain accesses are unaffected")
	}
}

func TestDisabledControllerIsSheriff(t *testing.T) {
	th, _ := newThread()
	shared := mem.NewAddrSpace(mem.NewMemory(mem.PageSize4K))
	fl := &fakeFlusher{}
	c := NewController(false, shared, fl)
	c.Enter(th, machine.RegionAsm)
	c.Enter(th, machine.RegionAtomicStrong)
	if fl.commits != 0 {
		t.Error("disabled controller never flushes")
	}
	if got := c.SpaceFor(th, &machine.Access{Atomic: true}); got != nil {
		t.Error("disabled controller never redirects — Sheriff semantics")
	}
	c.Exit(th, machine.RegionAtomicStrong)
	c.Exit(th, machine.RegionAsm)
}

func TestNestedRegions(t *testing.T) {
	th, _ := newThread()
	shared := mem.NewAddrSpace(mem.NewMemory(mem.PageSize4K))
	c := NewController(true, shared, &fakeFlusher{})
	c.Enter(th, machine.RegionAsm)
	c.Enter(th, machine.RegionAtomicStrong) // atomics inside asm (case 4)
	c.Exit(th, machine.RegionAtomicStrong)
	if !c.Disabled(th) {
		t.Error("still inside asm: must remain disabled")
	}
	c.Exit(th, machine.RegionAsm)
	if c.Disabled(th) {
		t.Error("all regions closed: enabled again")
	}
}

func TestNoFlushWhenBufferClean(t *testing.T) {
	th, _ := newThread()
	shared := mem.NewAddrSpace(mem.NewMemory(mem.PageSize4K))
	c := NewController(true, shared, nil) // nil engine: detection-only mode
	c.Enter(th, machine.RegionAsm)        // must not panic
	c.Exit(th, machine.RegionAsm)
}

// Table 2 tests: the matrix matches the paper cell for cell.

func TestTable2MatrixCases(t *testing.T) {
	cases := []struct {
		a, b      RegionClass
		caseNo    int
		semantics string
		permitted bool
	}{
		{ClassRegular, ClassRegular, 1, "undefined", true},
		{ClassRegular, ClassAtomic, 1, "undefined", true},
		{ClassAtomic, ClassAtomic, 2, "atomic", false},
		{ClassRegular, ClassAsm, 3, "unknown", false},
		{ClassAtomic, ClassAsm, 4, "unknown", false},
		{ClassAsm, ClassAsm, 5, "TSO", false},
	}
	for _, c := range cases {
		got := Table2(c.a, c.b)
		if got.Case != c.caseNo || got.Semantics != c.semantics || got.PTSBPermitted != c.permitted {
			t.Errorf("Table2(%v,%v) = %+v, want case %d %s permitted=%v",
				c.a, c.b, got, c.caseNo, c.semantics, c.permitted)
		}
	}
}

func TestTable2Symmetric(t *testing.T) {
	for _, a := range Classes() {
		for _, b := range Classes() {
			if Table2(a, b) != Table2(b, a) {
				t.Errorf("Table2 not symmetric for (%v,%v)", a, b)
			}
		}
	}
}

func TestStatsCountRegions(t *testing.T) {
	th, _ := newThread()
	c := NewController(true, mem.NewAddrSpace(mem.NewMemory(mem.PageSize4K)), &fakeFlusher{})
	c.Enter(th, machine.RegionAsm)
	c.Exit(th, machine.RegionAsm)
	c.Enter(th, machine.RegionAtomicRelaxed)
	c.Exit(th, machine.RegionAtomicRelaxed)
	c.Enter(th, machine.RegionAtomicStrong)
	c.Exit(th, machine.RegionAtomicStrong)
	if c.Stats.AsmRegions != 1 || c.Stats.RelaxedRegions != 1 || c.Stats.StrongRegions != 1 {
		t.Errorf("region stats %+v", c.Stats)
	}
}
