package ccc

import (
	"fmt"
	"strings"
)

// This file encodes Table 2 of the paper as data: the semantics of
// concurrent conflicting accesses between code regions of different
// consistency classes, and whether the PTSB is permitted for them. The
// table generator and the consistency tests consume it.

// RegionClass is a row/column of Table 2.
type RegionClass int

// Region classes.
const (
	ClassRegular RegionClass = iota
	ClassAtomic
	ClassAsm
)

func (c RegionClass) String() string {
	switch c {
	case ClassRegular:
		return "regular"
	case ClassAtomic:
		return "atomic"
	case ClassAsm:
		return "x86 asm"
	}
	return "?"
}

// Interaction is one cell of Table 2.
type Interaction struct {
	Case      int    // the paper's case number (1-5)
	Semantics string // "undefined", "atomic", "unknown", "TSO"
	// PTSBPermitted reports whether TMI may leave the PTSB active for the
	// interaction (the shaded cells).
	PTSBPermitted bool
}

// Table2 returns the cell for a pair of region classes. The relation is
// symmetric.
func Table2(a, b RegionClass) Interaction {
	if a > b {
		a, b = b, a
	}
	switch {
	case a == ClassRegular && b == ClassRegular:
		return Interaction{Case: 1, Semantics: "undefined", PTSBPermitted: true}
	case a == ClassRegular && b == ClassAtomic:
		return Interaction{Case: 1, Semantics: "undefined", PTSBPermitted: true}
	case a == ClassAtomic && b == ClassAtomic:
		return Interaction{Case: 2, Semantics: "atomic", PTSBPermitted: false}
	case a == ClassRegular && b == ClassAsm:
		// TMI still flushes here for uniformity, though undefined semantics
		// would permit the PTSB (paper, case 3).
		return Interaction{Case: 3, Semantics: "unknown", PTSBPermitted: false}
	case a == ClassAtomic && b == ClassAsm:
		return Interaction{Case: 4, Semantics: "unknown", PTSBPermitted: false}
	default: // asm x asm
		return Interaction{Case: 5, Semantics: "TSO", PTSBPermitted: false}
	}
}

// Classes lists the region classes in table order.
func Classes() []RegionClass { return []RegionClass{ClassRegular, ClassAtomic, ClassAsm} }

// RenderTable2 renders the full policy matrix as fixed-width text. The
// golden test diffs this against the paper's table so that edits to the
// policy data cannot drift silently; tmilint prints it on request.
func RenderTable2() string {
	const cellW = 28
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "")
	for _, c := range Classes() {
		fmt.Fprintf(&b, " | %-*s", cellW, c.String())
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 10+3*(cellW+3)))
	b.WriteString("\n")
	for _, row := range Classes() {
		fmt.Fprintf(&b, "%-10s", row)
		for _, col := range Classes() {
			cell := Table2(row, col)
			ptsb := "no PTSB"
			if cell.PTSBPermitted {
				ptsb = "PTSB ok"
			}
			fmt.Fprintf(&b, " | %-*s", cellW, fmt.Sprintf("case %d: %s (%s)", cell.Case, cell.Semantics, ptsb))
		}
		b.WriteString("\n")
	}
	return b.String()
}
