package ccc

import "testing"

// table2Golden is the paper's Table 2 rendered verbatim: cases 1-5 with
// their semantics, and the PTSB permitted exactly where conflicting access
// semantics are already undefined without an asm participant. Any edit to
// the policy data must consciously update this string.
const table2Golden = "" +
	"           | regular                      | atomic                       | x86 asm                     \n" +
	"-------------------------------------------------------------------------------------------------------\n" +
	"regular    | case 1: undefined (PTSB ok)  | case 1: undefined (PTSB ok)  | case 3: unknown (no PTSB)   \n" +
	"atomic     | case 1: undefined (PTSB ok)  | case 2: atomic (no PTSB)     | case 4: unknown (no PTSB)   \n" +
	"x86 asm    | case 3: unknown (no PTSB)    | case 4: unknown (no PTSB)    | case 5: TSO (no PTSB)       \n"

// TestRenderTable2Golden pins the rendered policy matrix to the paper's
// table so the data in Table2 cannot drift silently.
func TestRenderTable2Golden(t *testing.T) {
	got := RenderTable2()
	if got != table2Golden {
		t.Errorf("RenderTable2 drifted from the paper's Table 2:\ngot:\n%s\nwant:\n%s", got, table2Golden)
	}
}

// TestRenderTable2PTSBShading spot-checks the one property the repair
// correctness proof leans on: the PTSB may stay armed only when at least
// one side is a regular region (cases where the data race is already
// undefined behavior).
func TestRenderTable2PTSBShading(t *testing.T) {
	for _, a := range Classes() {
		for _, b := range Classes() {
			cell := Table2(a, b)
			wantPermitted := cell.Case == 1
			if cell.PTSBPermitted != wantPermitted {
				t.Errorf("Table2(%s, %s) = %+v: PTSBPermitted must hold exactly for case 1", a, b, cell)
			}
		}
	}
}
