package ccc

import (
	"testing"

	"repro/internal/sim/machine"
	"repro/internal/sim/mem"
)

// TestNestedMixedOrderingRegions pins the controller's behavior for the
// deepest legal mix: a relaxed atomic inside an acquire atomic inside an
// assembly region. Flush counts, per-ordering stats and routing are asserted
// at every step so a policy regression is caught at the exact transition.
func TestNestedMixedOrderingRegions(t *testing.T) {
	th, _ := newThread()
	shared := mem.NewAddrSpace(mem.NewMemory(mem.PageSize4K))
	fl := &fakeFlusher{}
	c := NewController(true, shared, fl)

	c.Enter(th, machine.RegionAsm) // outermost: asm flushes and disables
	if fl.commits != 1 {
		t.Fatalf("asm entry: commits=%d, want 1", fl.commits)
	}
	c.Enter(th, machine.RegionAtomicAcquire) // acquire inside asm still flushes
	if fl.commits != 2 {
		t.Fatalf("acquire entry: commits=%d, want 2", fl.commits)
	}
	c.Enter(th, machine.RegionAtomicRelaxed) // relaxed never flushes
	if fl.commits != 2 {
		t.Fatalf("relaxed entry: commits=%d, want 2 (relaxed must not flush)", fl.commits)
	}
	if !c.Disabled(th) {
		t.Error("asm+acquire open: PTSB must be disabled")
	}
	if got := c.SpaceFor(th, &machine.Access{}); got != shared {
		t.Error("plain access inside the nest must route to the shared view")
	}

	c.Exit(th, machine.RegionAtomicRelaxed)
	if !c.Disabled(th) {
		t.Error("relaxed closed, acquire+asm still open: must remain disabled")
	}
	c.Exit(th, machine.RegionAtomicAcquire)
	if !c.Disabled(th) {
		t.Error("acquire closed, asm still open: must remain disabled")
	}
	c.Exit(th, machine.RegionAsm)
	if c.Disabled(th) {
		t.Error("all regions closed: enabled again")
	}
	if got := c.SpaceFor(th, &machine.Access{}); got != nil {
		t.Error("plain access outside regions keeps the thread's space")
	}
	if fl.commits != 2 {
		t.Errorf("exits must not flush: commits=%d, want 2", fl.commits)
	}

	want := Stats{Flushes: 2, AsmRegions: 1, StrongRegions: 1, RelaxedRegions: 1, AcquireRegions: 1}
	if c.Stats != want {
		t.Errorf("stats = %+v, want %+v", c.Stats, want)
	}
}

// TestRelaxedRoutesWithoutDisabling pins the relaxed-region distinction: a
// relaxed atomic region routes accesses to shared memory (atomicity needs a
// single authoritative copy) but does NOT disable the PTSB, because relaxed
// ordering imposes no flush obligation (paper §3.4 case 2).
func TestRelaxedRoutesWithoutDisabling(t *testing.T) {
	th, _ := newThread()
	shared := mem.NewAddrSpace(mem.NewMemory(mem.PageSize4K))
	fl := &fakeFlusher{}
	c := NewController(true, shared, fl)

	c.Enter(th, machine.RegionAtomicRelaxed)
	if c.Disabled(th) {
		t.Error("relaxed region must not disable the PTSB")
	}
	if got := c.SpaceFor(th, &machine.Access{}); got != shared {
		t.Error("accesses inside a relaxed region still route to shared memory")
	}
	c.Exit(th, machine.RegionAtomicRelaxed)
	if fl.commits != 0 {
		t.Errorf("relaxed region flushed %d time(s), want 0", fl.commits)
	}
}

// TestFenceRegionsFlushAndDisable: every standalone fence flavor flushes on
// entry (one commit both publishes buffered stores and re-protects the
// private view, so one mechanism serves acquire and release directions) and
// disables the PTSB while open.
func TestFenceRegionsFlushAndDisable(t *testing.T) {
	kinds := []machine.RegionKind{
		machine.RegionFenceAcquire, machine.RegionFenceRelease,
		machine.RegionFenceAcqRel, machine.RegionFenceSeqCst,
	}
	th, _ := newThread()
	shared := mem.NewAddrSpace(mem.NewMemory(mem.PageSize4K))
	fl := &fakeFlusher{}
	c := NewController(true, shared, fl)
	for i, k := range kinds {
		c.Enter(th, k)
		if fl.commits != i+1 {
			t.Errorf("%v entry: commits=%d, want %d", k, fl.commits, i+1)
		}
		if !c.Disabled(th) {
			t.Errorf("%v open: PTSB must be disabled", k)
		}
		c.Exit(th, k)
		if c.Disabled(th) {
			t.Errorf("%v closed: PTSB must be enabled", k)
		}
	}
	if c.Stats.Fences != uint64(len(kinds)) {
		t.Errorf("Fences=%d, want %d", c.Stats.Fences, len(kinds))
	}
	if c.Stats.StrongRegions != 0 {
		t.Errorf("fences must not count as strong atomic regions, StrongRegions=%d", c.Stats.StrongRegions)
	}
}

// TestPerOrderingStatsSplit: each non-relaxed atomic ordering increments its
// own counter AND the legacy StrongRegions aggregate, so pre-C11 consumers
// of Stats keep reading the same totals.
func TestPerOrderingStatsSplit(t *testing.T) {
	th, _ := newThread()
	c := NewController(true, mem.NewAddrSpace(mem.NewMemory(mem.PageSize4K)), &fakeFlusher{})
	for _, k := range []machine.RegionKind{
		machine.RegionAtomicAcquire, machine.RegionAtomicRelease,
		machine.RegionAtomicAcqRel, machine.RegionAtomicStrong, machine.RegionAtomicStrong,
	} {
		c.Enter(th, k)
		c.Exit(th, k)
	}
	s := c.Stats
	if s.AcquireRegions != 1 || s.ReleaseRegions != 1 || s.AcqRelRegions != 1 || s.SeqCstRegions != 2 {
		t.Errorf("per-ordering split %+v", s)
	}
	if s.StrongRegions != 5 {
		t.Errorf("legacy aggregate StrongRegions=%d, want 5 (sum of all non-relaxed entries)", s.StrongRegions)
	}
	if s.Flushes != 5 {
		t.Errorf("every non-relaxed atomic entry flushes: Flushes=%d, want 5", s.Flushes)
	}
}
