// Package ptsb implements the page twinning store buffer (PTSB): the
// mechanism that actually repairs false sharing once threads run as
// processes (paper §2.2, §3.3).
//
// A protected page is mapped private and read-only in each process. The
// first write faults; the engine snapshots the page (the "twin"), grants a
// private copy-on-write copy, and lets subsequent writes run at native speed
// on the private physical page — which, crucially, has a different physical
// address than every other thread's copy, so the cache sees no sharing at
// all. At every synchronization operation the engine diffs each dirty page
// against its twin byte by byte and merges only the changed bytes into
// shared memory, then drops the copy and re-protects the page.
//
// The byte-granularity merge is faithful, including its known flaw: a
// multi-byte store whose bytes partially equal the twin is merged as if it
// were a narrower store, violating aligned multi-byte store atomicity
// (AMBSA). The word-tearing example of Figure 3 reproduces on this engine
// for real; code-centric consistency (package ccc) exists to keep that
// flaw invisible.
package ptsb

import (
	"fmt"

	"repro/internal/sim/machine"
	"repro/internal/sim/mem"
)

// Cost model (cycles).
const (
	// CostTwinFaultBase is the trap + protection-change cost of a PTSB
	// write fault; copying the page costs CostCopyPerByte on top.
	CostTwinFaultBase = 6000
	CostCopyPerByte   = 1.0 / 16.0 // 16 bytes per cycle memcpy
	// CostCommitPage is the fixed diff overhead per committed page.
	CostCommitPage = 150
	// CostScanPerChunk is the memcmp cost for one 64-byte chunk that is
	// unchanged (the huge-page fast path compares 4 KiB slabs first).
	CostScanPerChunk = 2
	// CostMergePerByte is the cost of merging one changed byte.
	CostMergePerByte = 4
	// ChunkBytes is the memcmp granularity.
	ChunkBytes = 64
	// SlabBytes is the huge-page commit fast path granularity: 4 KiB slabs
	// are compared wholesale before falling back to chunk scans (§4.4).
	SlabBytes = 4096
	// CostSlabCompare is the cost of one 4 KiB slab memcmp.
	CostSlabCompare = 128
)

// Stats aggregates PTSB activity for the Table 3 characterization.
type Stats struct {
	TwinFaults  uint64
	Commits     uint64 // commit operations (per thread per sync with dirty pages)
	PagesDiffed uint64
	BytesMerged uint64
}

// threadBuf is one thread's store-buffer state.
type threadBuf struct {
	twins map[uint64]*mem.Page // page-aligned vaddr -> twin snapshot
	order []uint64             // fault order, for deterministic commits
	space *mem.AddrSpace       // the thread's space, captured at first fault
}

// PageActivity tracks how much repair a protected page is actually doing,
// for the teardown extension: a page whose commits stop merging bytes no
// longer exhibits write sharing and can be returned to direct shared access.
type PageActivity struct {
	TwinFaults  uint64
	BytesMerged uint64
}

// Engine is the PTSB for one application.
type Engine struct {
	memory *mem.Memory
	shared *mem.AddrSpace // the always-shared view used for merging
	// protected marks page-aligned virtual addresses with the PTSB armed.
	protected map[uint64]bool
	bufs      map[int]*threadBuf
	pageSize  int
	activity  map[uint64]*PageActivity

	Stats Stats
}

// NewEngine creates a PTSB engine merging through the given always-shared
// view.
func NewEngine(memory *mem.Memory, shared *mem.AddrSpace) *Engine {
	return &Engine{
		memory:    memory,
		shared:    shared,
		protected: make(map[uint64]bool),
		bufs:      make(map[int]*threadBuf),
		pageSize:  memory.PageSize(),
		activity:  make(map[uint64]*PageActivity),
	}
}

// PageSize reports the engine's page size.
func (e *Engine) PageSize() int { return e.pageSize }

func (e *Engine) pageBase(addr uint64) uint64 {
	return addr &^ (uint64(e.pageSize) - 1)
}

// Protect arms the PTSB on the page containing addr in each of the given
// address spaces: the page becomes private and read-only so the next write
// traps. The always-shared view is left untouched.
func (e *Engine) Protect(addr uint64, spaces []*mem.AddrSpace) error {
	base := e.pageBase(addr)
	if e.protected[base] {
		return nil
	}
	for _, sp := range spaces {
		if err := sp.Protect(base, 1, true, mem.ProtRead); err != nil {
			return fmt.Errorf("ptsb: protect 0x%x: %w", base, err)
		}
	}
	e.protected[base] = true
	return nil
}

// Protected reports whether the page containing addr is PTSB-armed.
func (e *Engine) Protected(addr uint64) bool { return e.protected[e.pageBase(addr)] }

// ProtectedPages returns the number of armed pages.
func (e *Engine) ProtectedPages() int { return len(e.protected) }

func (e *Engine) buf(tid int) *threadBuf {
	b := e.bufs[tid]
	if b == nil {
		b = &threadBuf{twins: make(map[uint64]*mem.Page)}
		e.bufs[tid] = b
	}
	return b
}

// HandleWriteFault services a write fault on a PTSB page for thread t:
// snapshot the twin, grant a writable private mapping, and report the cost.
// It returns false if the fault is not on a PTSB page (not ours).
func (e *Engine) HandleWriteFault(t *machine.Thread, addr uint64) (bool, int64) {
	base := e.pageBase(addr)
	if !e.protected[base] {
		return false, 0
	}
	b := e.buf(t.ID)
	if _, dup := b.twins[base]; dup {
		// Already writable for this thread; the fault must be from another
		// cause.
		return false, 0
	}
	// Twin: snapshot of the shared page at protection time.
	str, fault := e.shared.Translate(base, false)
	if fault != nil {
		panic(fmt.Sprintf("ptsb: shared view unmapped at 0x%x: %v", base, fault))
	}
	twin := e.memory.NewAnonPage()
	copy(twin.Data, str.Page.Data)
	b.twins[base] = twin
	b.order = append(b.order, base)
	b.space = t.Space()
	e.pageActivity(base).TwinFaults++
	// Grant write: the space's next write performs the COW copy itself.
	if err := t.Space().Protect(base, 1, true, mem.ProtRW); err != nil {
		panic(fmt.Sprintf("ptsb: grant write: %v", err))
	}
	e.Stats.TwinFaults++
	cost := int64(CostTwinFaultBase + float64(e.pageSize)*CostCopyPerByte)
	return true, cost
}

// DirtyPages reports how many pages thread tid currently holds privately.
func (e *Engine) DirtyPages(tid int) int {
	if b := e.bufs[tid]; b != nil {
		return len(b.twins)
	}
	return 0
}

// Commit diffs and merges every page thread t holds privately into shared
// memory and returns the cycle cost. Only bytes that differ from the twin
// are written — exactly the semantics that make PTSBs efficient and
// AMBSA-breaking. After the merge each page is refreshed in place: the
// private copy and its twin are reloaded from the merged shared page and
// the mapping stays writable-private, so steady-state commit cost is a diff
// plus a page copy rather than a protection fault per critical section.
func (e *Engine) Commit(t *machine.Thread) int64 {
	b := e.bufs[t.ID]
	if b == nil || len(b.twins) == 0 {
		return 0
	}
	var cost int64
	for _, base := range b.order {
		twin := b.twins[base]
		if twin == nil {
			continue
		}
		cost += e.commitPage(t, base, twin)
	}
	e.Stats.Commits++
	return cost
}

// pageActivity returns (creating if needed) the per-page activity record.
func (e *Engine) pageActivity(base uint64) *PageActivity {
	a := e.activity[base]
	if a == nil {
		a = &PageActivity{}
		e.activity[base] = a
	}
	return a
}

// Activity returns a copy of the per-page activity counters for the page
// containing addr.
func (e *Engine) Activity(addr uint64) PageActivity {
	if a := e.activity[e.pageBase(addr)]; a != nil {
		return *a
	}
	return PageActivity{}
}

// Unprotect tears repair down on the page containing addr: every thread's
// pending private changes are committed and its copy dropped, the page is
// restored to direct shared read-write access in the given spaces, and the
// PTSB forgets it. Used by the teardown extension when a repaired page's
// commits stop merging bytes (contention has moved on) — the reverse of
// Protect, preserving the compatible-by-default property in both
// directions.
func (e *Engine) Unprotect(addr uint64, spaces []*mem.AddrSpace) error {
	base := e.pageBase(addr)
	if !e.protected[base] {
		return nil
	}
	// Flush every thread's pending state for this page.
	for _, b := range e.bufs {
		twin := b.twins[base]
		if twin == nil {
			continue
		}
		if b.space != nil {
			if mp := b.space.MappingAt(base); mp != nil && mp.Copied != nil {
				e.mergePageInto(base, twin, mp.Copied.Data)
			}
			b.space.DropCopy(base)
		}
		delete(b.twins, base)
		for i, p := range b.order {
			if p == base {
				b.order = append(b.order[:i], b.order[i+1:]...)
				break
			}
		}
	}
	for _, sp := range spaces {
		if err := sp.Protect(base, 1, false, mem.ProtRW); err != nil {
			return fmt.Errorf("ptsb: unprotect 0x%x: %w", base, err)
		}
	}
	delete(e.protected, base)
	delete(e.activity, base)
	return nil
}

// mergePageInto merges priv's changes (vs twin) into the shared page,
// without cost accounting (runs in PM context during teardown).
func (e *Engine) mergePageInto(base uint64, twin *mem.Page, priv []byte) {
	str, fault := e.shared.Translate(base, true)
	if fault != nil {
		panic(fmt.Sprintf("ptsb: shared view fault at teardown: %v", fault))
	}
	for i := range priv {
		if priv[i] != twin.Data[i] {
			str.Page.Data[i] = priv[i]
		}
	}
}

// Release drops every private copy thread t holds and re-protects the
// pages (used when a thread exits or repair is torn down).
func (e *Engine) Release(t *machine.Thread) {
	b := e.bufs[t.ID]
	if b == nil {
		return
	}
	for _, base := range b.order {
		t.Space().DropCopy(base)
		delete(b.twins, base)
	}
	b.order = b.order[:0]
}

func (e *Engine) commitPage(t *machine.Thread, base uint64, twin *mem.Page) int64 {
	cost := int64(CostCommitPage)
	mp := t.Space().MappingAt(base)
	str, fault := e.shared.Translate(base, true)
	if fault != nil {
		panic(fmt.Sprintf("ptsb: shared view fault at commit: %v", fault))
	}
	sharedData := str.Page.Data
	e.Stats.PagesDiffed++
	if mp == nil || mp.Copied == nil {
		// Granted writable but never written: just refresh nothing.
		return cost
	}
	priv := mp.Copied.Data
	dirtySlabs := 0
	// Huge-page fast path: skip identical 4 KiB slabs wholesale (§4.4);
	// only dirty slabs pay the chunk scan, merge and refresh copy.
	for slab := 0; slab < e.pageSize; slab += SlabBytes {
		cost += CostSlabCompare
		if bytesEqual(priv[slab:slab+SlabBytes], twin.Data[slab:slab+SlabBytes]) {
			continue
		}
		dirtySlabs++
		for c := slab; c < slab+SlabBytes; c += ChunkBytes {
			cost += CostScanPerChunk
			pc := priv[c : c+ChunkBytes]
			tc := twin.Data[c : c+ChunkBytes]
			if bytesEqual(pc, tc) {
				continue
			}
			for i := 0; i < ChunkBytes; i++ {
				if pc[i] != tc[i] {
					// Merge exactly the changed byte: updating any other
					// byte would fabricate stores the program did not
					// perform (§2.2).
					sharedData[c+i] = pc[i]
					cost += CostMergePerByte
					e.Stats.BytesMerged++
					e.pageActivity(base).BytesMerged++
				}
			}
		}
	}
	// Refresh: the private copy and twin become the merged shared image, so
	// the thread observes other threads' committed writes (the acquire side
	// of Lemma 3.1) without a protection fault on its next write.
	copy(priv, sharedData)
	copy(twin.Data, sharedData)
	cost += int64(float64(dirtySlabs*SlabBytes) * CostCopyPerByte)
	return cost
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
