// Package ptsb implements the page twinning store buffer (PTSB): the
// mechanism that actually repairs false sharing once threads run as
// processes (paper §2.2, §3.3).
//
// A protected page is mapped private and read-only in each process. The
// first write faults; the engine snapshots the page (the "twin"), grants a
// private copy-on-write copy, and lets subsequent writes run at native speed
// on the private physical page — which, crucially, has a different physical
// address than every other thread's copy, so the cache sees no sharing at
// all. At every synchronization operation the engine diffs each dirty page
// against its twin byte by byte and merges only the changed bytes into
// shared memory, then drops the copy and re-protects the page.
//
// The byte-granularity merge is faithful, including its known flaw: a
// multi-byte store whose bytes partially equal the twin is merged as if it
// were a narrower store, violating aligned multi-byte store atomicity
// (AMBSA). The word-tearing example of Figure 3 reproduces on this engine
// for real; code-centric consistency (package ccc) exists to keep that
// flaw invisible.
//
// All per-page state (protection bits, twins, activity counters) is indexed
// by the run-wide interned PageID and stamped with the page generation at
// the time it was recorded: the fault and commit paths are slice indexes
// with no hashing, and a remap/unmap elsewhere invalidates this engine's
// state for the page implicitly — a stale-generation twin is dropped at the
// next commit instead of merging into whatever now lives at that address.
package ptsb

import (
	"bytes"
	"fmt"

	"repro/internal/sim/intern"
	"repro/internal/sim/machine"
	"repro/internal/sim/mem"
)

// Cost model (cycles).
const (
	// CostTwinFaultBase is the trap + protection-change cost of a PTSB
	// write fault; copying the page costs CostCopyPerByte on top.
	CostTwinFaultBase = 6000
	CostCopyPerByte   = 1.0 / 16.0 // 16 bytes per cycle memcpy
	// CostCommitPage is the fixed diff overhead per committed page.
	CostCommitPage = 150
	// CostScanPerChunk is the memcmp cost for one 64-byte chunk that is
	// unchanged (the huge-page fast path compares 4 KiB slabs first).
	CostScanPerChunk = 2
	// CostMergePerByte is the cost of merging one changed byte.
	CostMergePerByte = 4
	// ChunkBytes is the memcmp granularity.
	ChunkBytes = 64
	// SlabBytes is the huge-page commit fast path granularity: 4 KiB slabs
	// are compared wholesale before falling back to chunk scans (§4.4).
	SlabBytes = 4096
	// CostSlabCompare is the cost of one 4 KiB slab memcmp.
	CostSlabCompare = 128
)

// Stats aggregates PTSB activity for the Table 3 characterization.
type Stats struct {
	TwinFaults  uint64
	Commits     uint64 // commit operations (per thread per sync with dirty pages)
	PagesDiffed uint64
	BytesMerged uint64
}

// threadBuf is one thread's store-buffer state: PageID-indexed twin
// snapshots stamped with the generation observed at fault time, plus the
// fault order for deterministic commits.
type threadBuf struct {
	twins []*mem.Page     // PageID -> twin snapshot (nil = no twin)
	gens  []uint32        // generation observed when the twin was taken
	order []intern.PageID // fault order
	count int             // live twin entries
	space *mem.AddrSpace  // the thread's space, captured at first fault
}

// twin returns the thread's twin for id if it exists and is still current.
func (b *threadBuf) twin(id intern.PageID, gen uint32) *mem.Page {
	if int(id) >= len(b.twins) || b.twins[id] == nil || b.gens[id] != gen {
		return nil
	}
	return b.twins[id]
}

// put stores a twin for id at gen and reports whether the slot was empty
// (false means a stale-generation twin was replaced in place, so id is
// already on the order list).
func (b *threadBuf) put(id intern.PageID, gen uint32, twin *mem.Page) bool {
	b.twins = intern.Grow(b.twins, id)
	b.gens = intern.Grow(b.gens, id)
	fresh := b.twins[id] == nil
	if fresh {
		b.count++
	}
	b.twins[id] = twin
	b.gens[id] = gen
	return fresh
}

func (b *threadBuf) drop(id intern.PageID) {
	if int(id) < len(b.twins) && b.twins[id] != nil {
		b.twins[id] = nil
		b.count--
	}
}

// PageActivity tracks how much repair a protected page is actually doing,
// for the teardown extension: a page whose commits stop merging bytes no
// longer exhibits write sharing and can be returned to direct shared access.
type PageActivity struct {
	TwinFaults  uint64
	BytesMerged uint64
}

// protRec marks one page's protection state; valid only while its
// generation matches the intern table's.
type protRec struct {
	armed bool
	gen   uint32
}

// activityRec is one page's activity record, generation-stamped like every
// other per-page cache in the engine.
type activityRec struct {
	init bool
	gen  uint32
	act  PageActivity
}

// Engine is the PTSB for one application.
type Engine struct {
	memory   *mem.Memory
	shared   *mem.AddrSpace // the always-shared view used for merging
	tab      *intern.Table
	pageSize int

	protected []protRec     // PageID -> armed?
	activity  []activityRec // PageID -> repair activity
	bufs      []*threadBuf  // tid -> store buffer

	Stats Stats
}

// NewEngine creates a PTSB engine merging through the given always-shared
// view.
func NewEngine(memory *mem.Memory, shared *mem.AddrSpace) *Engine {
	return &Engine{
		memory:   memory,
		shared:   shared,
		tab:      memory.PageTable(),
		pageSize: memory.PageSize(),
	}
}

// PageSize reports the engine's page size.
func (e *Engine) PageSize() int { return e.pageSize }

func (e *Engine) pageBase(addr uint64) uint64 {
	return addr &^ (uint64(e.pageSize) - 1)
}

// isProtected reports whether id is armed at its current generation.
func (e *Engine) isProtected(id intern.PageID) bool {
	return int(id) < len(e.protected) &&
		e.protected[id].armed &&
		e.protected[id].gen == e.tab.Gen(id)
}

// Protect arms the PTSB on the page containing addr in each of the given
// address spaces: the page becomes private and read-only so the next write
// traps. The always-shared view is left untouched.
func (e *Engine) Protect(addr uint64, spaces []*mem.AddrSpace) error {
	base := e.pageBase(addr)
	id := e.tab.Intern(base)
	if e.isProtected(id) {
		return nil
	}
	for _, sp := range spaces {
		if err := sp.Protect(base, 1, true, mem.ProtRead); err != nil {
			return fmt.Errorf("ptsb: protect 0x%x: %w", base, err)
		}
	}
	e.protected = intern.Grow(e.protected, id)
	e.protected[id] = protRec{armed: true, gen: e.tab.Gen(id)}
	return nil
}

// Protected reports whether the page containing addr is PTSB-armed.
func (e *Engine) Protected(addr uint64) bool {
	id := e.tab.Lookup(e.pageBase(addr))
	return id != intern.None && e.isProtected(id)
}

// ProtectedPages returns the number of armed pages.
func (e *Engine) ProtectedPages() int {
	n := 0
	for id := range e.protected {
		if e.isProtected(intern.PageID(id)) {
			n++
		}
	}
	return n
}

func (e *Engine) buf(tid int) *threadBuf {
	for len(e.bufs) <= tid {
		e.bufs = append(e.bufs, nil)
	}
	b := e.bufs[tid]
	if b == nil {
		b = &threadBuf{}
		e.bufs[tid] = b
	}
	return b
}

// HandleWriteFault services a write fault on a PTSB page for thread t:
// snapshot the twin, grant a writable private mapping, and report the cost.
// It returns false if the fault is not on a PTSB page (not ours).
func (e *Engine) HandleWriteFault(t *machine.Thread, addr uint64) (bool, int64) {
	base := e.pageBase(addr)
	id := e.tab.Lookup(base)
	if id == intern.None || !e.isProtected(id) {
		return false, 0
	}
	gen := e.tab.Gen(id)
	b := e.buf(t.ID)
	if b.twin(id, gen) != nil {
		// Already writable for this thread; the fault must be from another
		// cause.
		return false, 0
	}
	// Twin: snapshot of the shared page at protection time.
	str, fault := e.shared.Translate(base, false)
	if fault != nil {
		panic(fmt.Sprintf("ptsb: shared view unmapped at 0x%x: %v", base, fault))
	}
	twin := e.memory.NewAnonPage()
	copy(twin.Data, str.Page.Data)
	if e.buf(t.ID).put(id, gen, twin) {
		b.order = append(b.order, id)
	}
	b.space = t.Space()
	e.act(id, gen).TwinFaults++
	// Grant write: the space's next write performs the COW copy itself.
	if err := t.Space().Protect(base, 1, true, mem.ProtRW); err != nil {
		panic(fmt.Sprintf("ptsb: grant write: %v", err))
	}
	e.Stats.TwinFaults++
	cost := int64(CostTwinFaultBase + float64(e.pageSize)*CostCopyPerByte)
	return true, cost
}

// DirtyPages reports how many pages thread tid currently holds privately.
func (e *Engine) DirtyPages(tid int) int {
	if tid < len(e.bufs) && e.bufs[tid] != nil {
		return e.bufs[tid].count
	}
	return 0
}

// Commit diffs and merges every page thread t holds privately into shared
// memory and returns the cycle cost. Only bytes that differ from the twin
// are written — exactly the semantics that make PTSBs efficient and
// AMBSA-breaking. After the merge each page is refreshed in place: the
// private copy and its twin are reloaded from the merged shared page and
// the mapping stays writable-private, so steady-state commit cost is a diff
// plus a page copy rather than a protection fault per critical section.
//
// A twin whose page generation moved since the fault (the page was unmapped
// or remapped) is dropped without merging: the bytes under that virtual
// address no longer belong to the mapping the twin was taken against.
func (e *Engine) Commit(t *machine.Thread) int64 {
	var b *threadBuf
	if t.ID < len(e.bufs) {
		b = e.bufs[t.ID]
	}
	if b == nil || len(b.order) == 0 {
		return 0
	}
	var cost int64
	kept := b.order[:0]
	for _, id := range b.order {
		if int(id) >= len(b.twins) || b.twins[id] == nil {
			continue
		}
		gen := e.tab.Gen(id)
		if b.gens[id] != gen {
			b.drop(id) // stale: remapped since the fault
			continue
		}
		cost += e.commitPage(t, id, gen, b.twins[id])
		kept = append(kept, id)
	}
	b.order = kept
	e.Stats.Commits++
	return cost
}

// act returns the activity record for id at gen, resetting any record left
// over from a previous generation of the page.
func (e *Engine) act(id intern.PageID, gen uint32) *PageActivity {
	e.activity = intern.Grow(e.activity, id)
	a := &e.activity[id]
	if !a.init || a.gen != gen {
		*a = activityRec{init: true, gen: gen}
	}
	return &a.act
}

// Activity returns a copy of the per-page activity counters for the page
// containing addr.
func (e *Engine) Activity(addr uint64) PageActivity {
	id := e.tab.Lookup(e.pageBase(addr))
	if id == intern.None || int(id) >= len(e.activity) {
		return PageActivity{}
	}
	a := e.activity[id]
	if !a.init || a.gen != e.tab.Gen(id) {
		return PageActivity{}
	}
	return a.act
}

// Unprotect tears repair down on the page containing addr: every thread's
// pending private changes are committed and its copy dropped, the page is
// restored to direct shared read-write access in the given spaces, and the
// PTSB forgets it. Used by the teardown extension when a repaired page's
// commits stop merging bytes (contention has moved on) — the reverse of
// Protect, preserving the compatible-by-default property in both
// directions.
func (e *Engine) Unprotect(addr uint64, spaces []*mem.AddrSpace) error {
	base := e.pageBase(addr)
	id := e.tab.Lookup(base)
	if id == intern.None || !e.isProtected(id) {
		return nil
	}
	gen := e.tab.Gen(id)
	// Flush every thread's pending state for this page, in tid order.
	for _, b := range e.bufs {
		if b == nil {
			continue
		}
		twin := b.twin(id, gen)
		if twin == nil {
			continue
		}
		if b.space != nil {
			if mp := b.space.MappingAt(base); mp != nil && mp.Copied != nil {
				e.mergePageInto(base, twin, mp.Copied.Data)
			}
			b.space.DropCopy(base)
		}
		b.drop(id)
		for i, p := range b.order {
			if p == id {
				b.order = append(b.order[:i], b.order[i+1:]...)
				break
			}
		}
	}
	for _, sp := range spaces {
		if err := sp.Protect(base, 1, false, mem.ProtRW); err != nil {
			return fmt.Errorf("ptsb: unprotect 0x%x: %w", base, err)
		}
	}
	e.protected[id] = protRec{}
	if int(id) < len(e.activity) {
		e.activity[id] = activityRec{}
	}
	return nil
}

// mergePageInto merges priv's changes (vs twin) into the shared page,
// without cost accounting (runs in PM context during teardown).
func (e *Engine) mergePageInto(base uint64, twin *mem.Page, priv []byte) {
	str, fault := e.shared.Translate(base, true)
	if fault != nil {
		panic(fmt.Sprintf("ptsb: shared view fault at teardown: %v", fault))
	}
	for i := range priv {
		if priv[i] != twin.Data[i] {
			str.Page.Data[i] = priv[i]
		}
	}
}

// Release drops every private copy thread t holds and re-protects the
// pages (used when a thread exits or repair is torn down).
func (e *Engine) Release(t *machine.Thread) {
	var b *threadBuf
	if t.ID < len(e.bufs) {
		b = e.bufs[t.ID]
	}
	if b == nil {
		return
	}
	for _, id := range b.order {
		t.Space().DropCopy(e.tab.Addr(id))
		b.drop(id)
	}
	b.order = b.order[:0]
}

func (e *Engine) commitPage(t *machine.Thread, id intern.PageID, gen uint32, twin *mem.Page) int64 {
	base := e.tab.Addr(id)
	cost := int64(CostCommitPage)
	mp := t.Space().MappingAt(base)
	str, fault := e.shared.Translate(base, true)
	if fault != nil {
		panic(fmt.Sprintf("ptsb: shared view fault at commit: %v", fault))
	}
	sharedData := str.Page.Data
	e.Stats.PagesDiffed++
	if mp == nil || mp.Copied == nil {
		// Granted writable but never written: just refresh nothing.
		return cost
	}
	act := e.act(id, gen)
	priv := mp.Copied.Data
	dirtySlabs := 0
	// Huge-page fast path: skip identical 4 KiB slabs wholesale (§4.4);
	// only dirty slabs pay the chunk scan, merge and refresh copy.
	for slab := 0; slab < e.pageSize; slab += SlabBytes {
		cost += CostSlabCompare
		if bytesEqual(priv[slab:slab+SlabBytes], twin.Data[slab:slab+SlabBytes]) {
			continue
		}
		dirtySlabs++
		for c := slab; c < slab+SlabBytes; c += ChunkBytes {
			cost += CostScanPerChunk
			pc := priv[c : c+ChunkBytes]
			tc := twin.Data[c : c+ChunkBytes]
			if bytesEqual(pc, tc) {
				continue
			}
			for i := 0; i < ChunkBytes; i++ {
				if pc[i] != tc[i] {
					// Merge exactly the changed byte: updating any other
					// byte would fabricate stores the program did not
					// perform (§2.2).
					sharedData[c+i] = pc[i]
					cost += CostMergePerByte
					e.Stats.BytesMerged++
					act.BytesMerged++
				}
			}
		}
	}
	// Refresh: the private copy and twin become the merged shared image, so
	// the thread observes other threads' committed writes (the acquire side
	// of Lemma 3.1) without a protection fault on its next write.
	copy(priv, sharedData)
	copy(twin.Data, sharedData)
	cost += int64(float64(dirtySlabs*SlabBytes) * CostCopyPerByte)
	return cost
}

// bytesEqual dispatches to the runtime's vectorized memequal; the chunk
// scan compares every slab of every committed page, so this is the hottest
// loop in the PTSB.
func bytesEqual(a, b []byte) bool {
	return bytes.Equal(a, b)
}
