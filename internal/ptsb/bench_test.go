package ptsb

import (
	"testing"
)

// BenchmarkCommitDirtyPage measures the per-sync commit path with one
// twinned page carrying a one-byte diff: the chunk scan over the whole
// page plus the byte merge. This is the hot loop of every simulated
// release under repair.
func BenchmarkCommitDirtyPage(b *testing.B) {
	f := newFixture(b, 1)
	th := f.mc.Thread(0)
	if err := f.eng.Protect(heapBase, f.spaces); err != nil {
		b.Fatal(err)
	}
	if handled, _ := f.eng.HandleWriteFault(th, heapBase); !handled {
		b.Fatal("fault not handled")
	}
	tr, fault := th.Space().Translate(heapBase, true)
	if fault != nil {
		b.Fatal(fault)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Page.Data[0] = byte(i)
		f.eng.Commit(th)
	}
}

// BenchmarkCommitCleanPage measures the commit scan when the twin and the
// private copy are identical — pure bytesEqual over a page, no merge.
func BenchmarkCommitCleanPage(b *testing.B) {
	f := newFixture(b, 1)
	th := f.mc.Thread(0)
	if err := f.eng.Protect(heapBase, f.spaces); err != nil {
		b.Fatal(err)
	}
	if handled, _ := f.eng.HandleWriteFault(th, heapBase); !handled {
		b.Fatal("fault not handled")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.eng.Commit(th)
	}
}
