package ptsb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim/machine"
	"repro/internal/sim/mem"
)

const heapBase = 0x1000_0000

type fixture struct {
	memory *mem.Memory
	shared *mem.AddrSpace
	spaces []*mem.AddrSpace // one private space per thread
	mc     *machine.Machine
	eng    *Engine
}

// newFixture builds two threads in separate "processes" sharing a file, with
// the engine's fault handling wired into the machine.
func newFixture(t testing.TB, threads int) *fixture {
	t.Helper()
	m := mem.NewMemory(mem.PageSize4K)
	file := m.NewFile("heap")
	shared := mem.NewAddrSpace(m)
	shared.Map(heapBase, 8, file, 0, false, mem.ProtRW)
	mc := machine.New(machine.Config{Cores: threads, Seed: 5, Mem: m})
	f := &fixture{memory: m, shared: shared, mc: mc, eng: NewEngine(m, shared)}
	for _, th := range mc.Threads() {
		sp := mem.NewAddrSpace(m)
		sp.Map(heapBase, 8, file, 0, false, mem.ProtRW)
		th.SetSpace(sp)
		f.spaces = append(f.spaces, sp)
	}
	mc.SetHooks(machine.Hooks{
		OnFault: func(th *machine.Thread, acc *machine.Access, flt *mem.Fault) (bool, int64) {
			if flt.Kind == mem.FaultProtWrite {
				return f.eng.HandleWriteFault(th, acc.Addr)
			}
			return false, 0
		},
	})
	return f
}

func (f *fixture) sharedLoad(t testing.TB, addr uint64, size int) uint64 {
	t.Helper()
	tr, fault := f.shared.Translate(addr, false)
	if fault != nil {
		t.Fatal(fault)
	}
	return mem.LoadUint(tr, size)
}

func TestProtectTrapsFirstWrite(t *testing.T) {
	f := newFixture(t, 1)
	if err := f.eng.Protect(heapBase, f.spaces); err != nil {
		t.Fatal(err)
	}
	if !f.eng.Protected(heapBase + 100) {
		t.Error("page should be protected")
	}
	err := f.mc.Run([]func(*machine.Thread){func(th *machine.Thread) {
		th.Store(1, heapBase+16, 8, 7)
		th.Store(1, heapBase+24, 8, 8) // second write: no second fault
	}})
	if err != nil {
		t.Fatal(err)
	}
	if f.eng.Stats.TwinFaults != 1 {
		t.Errorf("twin faults %d, want 1", f.eng.Stats.TwinFaults)
	}
	// Uncommitted writes stay invisible in shared memory.
	if got := f.sharedLoad(t, heapBase+16, 8); got != 0 {
		t.Errorf("shared sees %d before commit", got)
	}
}

func TestCommitMergesOnlyChangedBytes(t *testing.T) {
	f := newFixture(t, 1)
	// Pre-existing shared data.
	tr, _ := f.shared.Translate(heapBase, true)
	mem.StoreUint(tr, 8, 0x1111_2222_3333_4444)
	if err := f.eng.Protect(heapBase, f.spaces); err != nil {
		t.Fatal(err)
	}
	err := f.mc.Run([]func(*machine.Thread){func(th *machine.Thread) {
		th.Store(1, heapBase+16, 8, 99)
		if cost := f.eng.Commit(th); cost <= 0 {
			t.Error("commit of a dirty page should cost cycles")
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.sharedLoad(t, heapBase+16, 8); got != 99 {
		t.Errorf("merged value %d, want 99", got)
	}
	if got := f.sharedLoad(t, heapBase, 8); got != 0x1111_2222_3333_4444 {
		t.Errorf("untouched bytes altered: 0x%x", got)
	}
	if f.eng.Stats.BytesMerged != 1 { // 99 is one byte; rest of the word was 0
		t.Errorf("bytes merged %d, want 1", f.eng.Stats.BytesMerged)
	}
}

func TestCommittedPagesStayWritableAndRefreshed(t *testing.T) {
	f := newFixture(t, 2)
	if err := f.eng.Protect(heapBase, f.spaces); err != nil {
		t.Fatal(err)
	}
	err := f.mc.Run([]func(*machine.Thread){
		func(th *machine.Thread) {
			th.Store(1, heapBase, 8, 10)
			f.eng.Commit(th)
			th.Work(10_000)  // let thread 1 commit its own write
			f.eng.Commit(th) // acquire-side refresh
			if got := th.Load(1, heapBase+8, 8); got != 20 {
				t.Errorf("after refresh, thread 0 reads %d, want 20", got)
			}
		},
		func(th *machine.Thread) {
			th.Store(1, heapBase+8, 8, 20)
			f.eng.Commit(th)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.eng.Stats.TwinFaults != 2 {
		t.Errorf("twin faults %d, want 2 (no refault after commit)", f.eng.Stats.TwinFaults)
	}
}

func TestIsolationRemovesFalseSharing(t *testing.T) {
	// Two threads writing disjoint halves of one line: protected pages give
	// them distinct physical lines, so HITM traffic disappears.
	run := func(protect bool) uint64 {
		f := newFixture(t, 2)
		if protect {
			if err := f.eng.Protect(heapBase, f.spaces); err != nil {
				t.Fatal(err)
			}
		}
		body := func(th *machine.Thread) {
			addr := heapBase + uint64(th.ID)*8
			for i := 0; i < 500; i++ {
				th.Store(1, addr, 8, uint64(i))
				th.Work(40)
			}
		}
		if err := f.mc.Run([]func(*machine.Thread){body, body}); err != nil {
			t.Fatal(err)
		}
		return f.mc.Cache().Stats().HITM
	}
	unprotected := run(false)
	protected := run(true)
	if protected*10 > unprotected {
		t.Errorf("PTSB should eliminate false sharing: %d -> %d HITM", unprotected, protected)
	}
}

// TestFig3WordTearing reproduces the paper's Figure 3 at the engine level:
// two aligned 2-byte stores with complementary byte patterns merge into a
// value no thread wrote.
func TestFig3WordTearing(t *testing.T) {
	f := newFixture(t, 2)
	if err := f.eng.Protect(heapBase, f.spaces); err != nil {
		t.Fatal(err)
	}
	body := func(val uint64) func(*machine.Thread) {
		return func(th *machine.Thread) {
			th.Store(1, heapBase, 2, val)
			th.Work(1000)
			f.eng.Commit(th)
		}
	}
	if err := f.mc.Run([]func(*machine.Thread){body(0xAB00), body(0x00CD)}); err != nil {
		t.Fatal(err)
	}
	if got := f.sharedLoad(t, heapBase, 2); got != 0xABCD {
		t.Errorf("expected deterministic tearing to 0xABCD, got 0x%04X", got)
	}
}

// TestRaceFreeProgramsCommitExactly is Lemma 3.1 as a property test: when
// writes to shared locations are serialized (each thread owns disjoint
// offsets, or writes happen in committed turns), diff-and-merge reproduces
// exactly the values written.
func TestRaceFreeProgramsCommitExactly(t *testing.T) {
	check := func(seed int64) bool {
		f := newFixture(t, 2)
		if err := f.eng.Protect(heapBase, f.spaces); err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		// Disjoint offset sets per thread: race-free by construction.
		offs := rng.Perm(mem.PageSize4K / 8)
		want := map[uint64]uint64{}
		body := func(tid int) func(*machine.Thread) {
			return func(th *machine.Thread) {
				myOffs := offs[tid*100 : (tid+1)*100]
				r := rand.New(rand.NewSource(seed + int64(tid)))
				for round := 0; round < 3; round++ {
					for _, o := range myOffs {
						addr := heapBase + uint64(o)*8
						v := r.Uint64()
						th.Store(1, addr, 8, v)
						want[addr] = v
					}
					f.eng.Commit(th)
				}
			}
		}
		if err := f.mc.Run([]func(*machine.Thread){body(0), body(1)}); err != nil {
			return false
		}
		for addr, v := range want {
			tr, fault := f.shared.Translate(addr, false)
			if fault != nil || mem.LoadUint(tr, 8) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestTornValuesComposeFromWrittenBytes: even for racy programs, every byte
// of the merged result was written by some thread (or is the initial value)
// — merging never fabricates bytes.
func TestTornValuesComposeFromWrittenBytes(t *testing.T) {
	check := func(seed int64) bool {
		f := newFixture(t, 2)
		if err := f.eng.Protect(heapBase, f.spaces); err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		vals := [2]uint64{rng.Uint64(), rng.Uint64()}
		body := func(tid int) func(*machine.Thread) {
			return func(th *machine.Thread) {
				th.Store(1, heapBase, 8, vals[tid]) // same address: a race
				th.Work(500)
				f.eng.Commit(th)
			}
		}
		if err := f.mc.Run([]func(*machine.Thread){body(0), body(1)}); err != nil {
			return false
		}
		tr, _ := f.shared.Translate(heapBase, false)
		got := mem.LoadUint(tr, 8)
		for b := 0; b < 8; b++ {
			byteOf := func(v uint64) byte { return byte(v >> (8 * b)) }
			g := byteOf(got)
			if g != byteOf(vals[0]) && g != byteOf(vals[1]) && g != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCommitCleanPageIsCheap(t *testing.T) {
	f := newFixture(t, 1)
	if err := f.eng.Protect(heapBase, f.spaces); err != nil {
		t.Fatal(err)
	}
	var dirtyCost, cleanCost int64
	err := f.mc.Run([]func(*machine.Thread){func(th *machine.Thread) {
		th.Store(1, heapBase, 8, 1)
		dirtyCost = f.eng.Commit(th)
		cleanCost = f.eng.Commit(th) // nothing written since
	}})
	if err != nil {
		t.Fatal(err)
	}
	if cleanCost >= dirtyCost {
		t.Errorf("clean commit (%d) should be cheaper than dirty (%d)", cleanCost, dirtyCost)
	}
}

func TestReleaseDropsPrivateCopies(t *testing.T) {
	f := newFixture(t, 1)
	if err := f.eng.Protect(heapBase, f.spaces); err != nil {
		t.Fatal(err)
	}
	err := f.mc.Run([]func(*machine.Thread){func(th *machine.Thread) {
		th.Store(1, heapBase, 8, 42)
		f.eng.Commit(th)
		f.eng.Release(th)
		if f.eng.DirtyPages(th.ID) != 0 {
			t.Error("release should drop all buffered pages")
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHugePageCommitUsesSlabFastPath(t *testing.T) {
	m := mem.NewMemory(mem.PageSize2M)
	file := m.NewFile("heap")
	shared := mem.NewAddrSpace(m)
	shared.Map(heapBase, 1, file, 0, false, mem.ProtRW)
	mc := machine.New(machine.Config{Cores: 1, Seed: 5, Mem: m})
	eng := NewEngine(m, shared)
	sp := mem.NewAddrSpace(m)
	sp.Map(heapBase, 1, file, 0, false, mem.ProtRW)
	mc.Thread(0).SetSpace(sp)
	mc.SetHooks(machine.Hooks{
		OnFault: func(th *machine.Thread, acc *machine.Access, flt *mem.Fault) (bool, int64) {
			return eng.HandleWriteFault(th, acc.Addr)
		},
	})
	if err := eng.Protect(heapBase, []*mem.AddrSpace{sp}); err != nil {
		t.Fatal(err)
	}
	var cost int64
	err := mc.Run([]func(*machine.Thread){func(th *machine.Thread) {
		th.Store(1, heapBase+8, 8, 1) // dirty exactly one 4K slab
		cost = eng.Commit(th)
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Full chunk scan of 2 MiB would cost 32768*CostScanPerChunk = 65536+;
	// the slab fast path must keep it near slab-compare territory.
	maxExpected := int64(CostCommitPage + 512*CostSlabCompare + (SlabBytes/ChunkBytes)*CostScanPerChunk + 64 + SlabBytes/16)
	if cost > maxExpected {
		t.Errorf("huge-page commit cost %d exceeds slab fast path bound %d", cost, maxExpected)
	}
}
