package ptsb

import (
	"testing"

	"repro/internal/sim/machine"
	"repro/internal/sim/mem"
)

func TestUnprotectFlushesPendingWrites(t *testing.T) {
	f := newFixture(t, 2)
	if err := f.eng.Protect(heapBase, f.spaces); err != nil {
		t.Fatal(err)
	}
	err := f.mc.Run([]func(*machine.Thread){
		func(th *machine.Thread) {
			th.Store(1, heapBase, 8, 111)
			th.Work(5_000)
			// Teardown happens while this thread still holds an
			// uncommitted private write: Unprotect must merge it, not
			// drop it.
			if err := f.eng.Unprotect(heapBase, f.spaces); err != nil {
				t.Error(err)
			}
			if f.eng.Protected(heapBase) {
				t.Error("page should be unprotected")
			}
			// Writes now go straight to shared memory.
			th.Store(1, heapBase+32, 8, 5)
		},
		func(th *machine.Thread) {
			th.Store(1, heapBase+8, 8, 222)
			f.eng.Commit(th)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for addr, want := range map[uint64]uint64{heapBase: 111, heapBase + 8: 222, heapBase + 32: 5} {
		if got := f.sharedLoad(t, addr, 8); got != want {
			t.Errorf("shared[0x%x] = %d, want %d", addr, got, want)
		}
	}
	if f.eng.Stats.TwinFaults != 2 {
		t.Errorf("twin faults %d, want 2", f.eng.Stats.TwinFaults)
	}
	// The post-teardown write must not have re-faulted.
	if f.eng.DirtyPages(0) != 0 || f.eng.DirtyPages(1) != 0 {
		t.Error("teardown should clear every thread's buffer for the page")
	}
}

func TestUnprotectOfUnprotectedPageIsNoOp(t *testing.T) {
	f := newFixture(t, 1)
	if err := f.eng.Unprotect(heapBase, f.spaces); err != nil {
		t.Fatal(err)
	}
}

func TestActivityCountersTrackRepairWork(t *testing.T) {
	f := newFixture(t, 2)
	if err := f.eng.Protect(heapBase, f.spaces); err != nil {
		t.Fatal(err)
	}
	err := f.mc.Run([]func(*machine.Thread){
		func(th *machine.Thread) {
			th.Store(1, heapBase, 8, 1)
			f.eng.Commit(th)
			th.Work(1000)
			f.eng.Commit(th) // clean commit: no new merged bytes
		},
		func(th *machine.Thread) { th.Work(10) },
	})
	if err != nil {
		t.Fatal(err)
	}
	act := f.eng.Activity(heapBase + 99)
	if act.TwinFaults != 1 {
		t.Errorf("activity twin faults %d, want 1", act.TwinFaults)
	}
	if act.BytesMerged != 1 {
		t.Errorf("activity bytes merged %d, want 1", act.BytesMerged)
	}
	if a := f.eng.Activity(heapBase + mem.PageSize4K); a.TwinFaults != 0 {
		t.Error("activity must be per page")
	}
}
