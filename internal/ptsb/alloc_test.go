package ptsb

import (
	"testing"

	"repro/internal/raceflag"
	"repro/internal/sim/mem"
)

// Steady-state commits — page already twinned, mapping already granted —
// must not allocate: twin lookup, protection checks and activity counters
// are all generation-checked slice indexes. The twin fault itself is
// allowed to allocate (it snapshots a page); the per-sync path is not.
func TestCommitSteadyStateAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("AllocsPerRun is meaningless under -race")
	}
	f := newFixture(t, 1)
	th := f.mc.Thread(0)
	if err := f.eng.Protect(heapBase, f.spaces); err != nil {
		t.Fatal(err)
	}
	// Fault the page in and dirty it once so Commit has work.
	if handled, _ := f.eng.HandleWriteFault(th, heapBase); !handled {
		t.Fatal("fault not handled")
	}
	write := func(v byte) {
		tr, fault := th.Space().Translate(heapBase, true)
		if fault != nil {
			t.Fatal(fault)
		}
		tr.Page.Data[0] = v
	}
	write(1)
	f.eng.Commit(th)

	v := byte(2)
	allocs := testing.AllocsPerRun(500, func() {
		write(v)
		f.eng.Commit(th)
		v++
	})
	if allocs != 0 {
		t.Errorf("steady-state Commit allocates %.1f/op, want 0", allocs)
	}
}

// A twin taken before the page is unmapped must not merge into whatever is
// mapped at that address afterwards: the generation bump at Unmap makes the
// twin stale, and Commit drops it.
func TestStaleTwinDroppedAfterRemap(t *testing.T) {
	f := newFixture(t, 1)
	th := f.mc.Thread(0)
	if err := f.eng.Protect(heapBase, f.spaces); err != nil {
		t.Fatal(err)
	}
	if handled, _ := f.eng.HandleWriteFault(th, heapBase); !handled {
		t.Fatal("fault not handled")
	}
	// Dirty the private copy.
	tr, fault := th.Space().Translate(heapBase, true)
	if fault != nil {
		t.Fatal(fault)
	}
	tr.Page.Data[0] = 0xaa
	if f.eng.DirtyPages(th.ID) != 1 {
		t.Fatalf("DirtyPages = %d, want 1", f.eng.DirtyPages(th.ID))
	}

	// The page is unmapped and the range remapped to a different file page
	// in every view (the shared one included) before the thread ever syncs.
	file2 := f.memory.NewFile("other")
	for _, sp := range append([]*mem.AddrSpace{f.shared}, f.spaces...) {
		sp.Unmap(heapBase, 1)
		sp.Map(heapBase, 1, file2, 0, false, mem.ProtRW)
	}

	if f.eng.Protected(heapBase) {
		t.Error("protection must not survive the remap (stale generation)")
	}
	if got := f.eng.Commit(th); got != 0 {
		t.Errorf("stale commit cost = %d, want 0 (twin dropped, nothing merged)", got)
	}
	if f.eng.DirtyPages(th.ID) != 0 {
		t.Errorf("stale twin leaked: DirtyPages = %d", f.eng.DirtyPages(th.ID))
	}
	if got := f.sharedLoad(t, heapBase, 1); got != 0 {
		t.Errorf("stale twin merged 0x%x into the remapped page", got)
	}
	// Activity for the old generation must not be visible either.
	if a := f.eng.Activity(heapBase); a.TwinFaults != 0 || a.BytesMerged != 0 {
		t.Errorf("stale activity leaked: %+v", a)
	}
}

// Re-protecting the same virtual page after a remap starts a fresh repair
// epoch: new twins, fresh activity, no interference from the old epoch.
func TestReprotectAfterRemapStartsFresh(t *testing.T) {
	f := newFixture(t, 1)
	th := f.mc.Thread(0)
	if err := f.eng.Protect(heapBase, f.spaces); err != nil {
		t.Fatal(err)
	}
	if handled, _ := f.eng.HandleWriteFault(th, heapBase); !handled {
		t.Fatal("fault not handled")
	}

	file2 := f.memory.NewFile("other")
	for _, sp := range append([]*mem.AddrSpace{f.shared}, f.spaces...) {
		sp.Unmap(heapBase, 1)
		sp.Map(heapBase, 1, file2, 0, false, mem.ProtRW)
	}

	if err := f.eng.Protect(heapBase, f.spaces); err != nil {
		t.Fatal(err)
	}
	if !f.eng.Protected(heapBase) {
		t.Fatal("re-protect did not arm")
	}
	if f.eng.ProtectedPages() != 1 {
		t.Errorf("ProtectedPages = %d, want 1", f.eng.ProtectedPages())
	}
	if handled, _ := f.eng.HandleWriteFault(th, heapBase); !handled {
		t.Fatal("fresh-epoch fault not handled")
	}
	if a := f.eng.Activity(heapBase); a.TwinFaults != 1 {
		t.Errorf("fresh-epoch TwinFaults = %d, want 1 (old epoch must not leak)", a.TwinFaults)
	}
	// The fresh twin merges against the new mapping.
	tr, fault := th.Space().Translate(heapBase, true)
	if fault != nil {
		t.Fatal(fault)
	}
	tr.Page.Data[3] = 0x7c
	if f.eng.Commit(th) == 0 {
		t.Error("fresh-epoch commit did no work")
	}
	if got := f.sharedLoad(t, heapBase+3, 1); got != 0x7c {
		t.Errorf("fresh-epoch merge wrote 0x%x, want 0x7c", got)
	}
}
