package mc_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mc"
	"repro/tmi/workload"
	"repro/tmi/workloads"
)

func factory(t *testing.T, name string) mc.Factory {
	t.Helper()
	return func() (workload.Workload, error) {
		w := workloads.LitmusByName(name)
		if w == nil {
			t.Fatalf("unknown litmus workload %q", name)
		}
		return w, nil
	}
}

func baselineOpts() mc.Options {
	return mc.Options{Setup: core.Pthreads}
}

func ptsbOpts() mc.Options {
	return mc.Options{Setup: core.TMIAlloc, ForceProtect: true}
}

// TestExploreSB pins the exact SC outcome set of store buffering: the
// forbidden r0=0,r1=0 must be absent and the three SC outcomes present.
func TestExploreSB(t *testing.T) {
	res, err := mc.Explore(factory(t, "litmus-sb"), baselineOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("exploration incomplete after %d runs", res.Runs)
	}
	want := []string{"r0=0 r1=1", "r0=1 r1=0", "r0=1 r1=1"}
	if got := res.OutcomeSet(); !reflect.DeepEqual(got, want) {
		t.Fatalf("outcome set = %v, want %v", got, want)
	}
	if !res.AllValidated() {
		t.Fatalf("some SC outcome failed validation: %+v", res.Outcomes)
	}
	t.Logf("litmus-sb baseline: %d runs (%d sleep-blocked), depth %d",
		res.Runs, res.SleepBlocked, res.MaxDepth)
}

// TestDPORMatchesBrute cross-validates the reduction: sleep-set DPOR must
// observe exactly the outcome set brute-force enumeration observes, on both
// configurations, while executing fewer runs.
func TestDPORMatchesBrute(t *testing.T) {
	if testing.Short() {
		t.Skip("brute-force enumeration is slow")
	}
	for _, name := range []string{"litmus-sb", "litmus-mp"} {
		for _, cfg := range []struct {
			label string
			opts  mc.Options
		}{
			{"baseline", baselineOpts()},
			{"ptsb", ptsbOpts()},
		} {
			opts := cfg.opts
			opts.MaxRuns = 2_000_000
			brute, err := mc.EnumerateAll(factory(t, name), opts)
			if err != nil {
				t.Fatalf("%s/%s: brute: %v", name, cfg.label, err)
			}
			if !brute.Complete {
				t.Fatalf("%s/%s: brute incomplete after %d runs", name, cfg.label, brute.Runs)
			}
			dpor, err := mc.Explore(factory(t, name), cfg.opts)
			if err != nil {
				t.Fatalf("%s/%s: dpor: %v", name, cfg.label, err)
			}
			if !dpor.Complete {
				t.Fatalf("%s/%s: dpor incomplete after %d runs", name, cfg.label, dpor.Runs)
			}
			if got, want := dpor.OutcomeSet(), brute.OutcomeSet(); !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: dpor outcomes %v != brute outcomes %v", name, cfg.label, got, want)
			}
			if dpor.Runs > brute.Runs {
				t.Errorf("%s/%s: dpor ran %d schedules, brute only %d — no reduction",
					name, cfg.label, dpor.Runs, brute.Runs)
			}
			t.Logf("%s/%s: brute %d runs, dpor %d runs (%d sleep-blocked)",
				name, cfg.label, brute.Runs, dpor.Runs, dpor.SleepBlocked)
		}
	}
}

// TestLitmusSCEquivalence machine-checks the PR's central claim on the clean
// kernels: with correct CCC annotations, the PTSB outcome set equals the SC
// baseline outcome set, and no explored schedule fails validation.
func TestLitmusSCEquivalence(t *testing.T) {
	for _, w := range workloads.LitmusSuite() {
		name := w.Name()
		t.Run(name, func(t *testing.T) {
			res, err := mc.CheckSC(factory(t, name), mc.SCOptions{Race: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Baseline.Complete || !res.PTSB.Complete {
				t.Fatalf("incomplete exploration: baseline %d runs (complete=%v), ptsb %d runs (complete=%v)",
					res.Baseline.Runs, res.Baseline.Complete, res.PTSB.Runs, res.PTSB.Complete)
			}
			if !res.SCEquivalent() {
				t.Fatalf("SC divergence: %+v", res.Divergences)
			}
			if !res.Baseline.AllValidated() || !res.PTSB.AllValidated() {
				t.Fatalf("validation failure: baseline %+v, ptsb %+v",
					res.Baseline.Outcomes, res.PTSB.Outcomes)
			}
			if len(res.Races) != 0 {
				t.Fatalf("clean kernel reported races: %v", res.Races)
			}
			t.Logf("%s: baseline %d runs / %d outcomes, ptsb %d runs / %d outcomes",
				name, res.Baseline.Runs, len(res.Baseline.Outcomes),
				res.PTSB.Runs, len(res.PTSB.Outcomes))
		})
	}
}

// TestBrokenFenceDivergence checks the negative fixture: the under-annotated
// MP kernel must diverge under the PTSB (flag observed set, data stale), the
// counterexample must shrink to a proper prefix, and the race detector must
// flag the plain flag accesses.
func TestBrokenFenceDivergence(t *testing.T) {
	res, err := mc.CheckSC(factory(t, "litmus-brokenfence"), mc.SCOptions{Race: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Baseline.Complete || !res.PTSB.Complete {
		t.Fatalf("incomplete exploration: baseline=%v ptsb=%v", res.Baseline.Complete, res.PTSB.Complete)
	}
	if res.SCEquivalent() {
		t.Fatalf("brokenfence not flagged: ptsb outcomes %v ⊆ baseline outcomes %v",
			res.PTSB.OutcomeSet(), res.Baseline.OutcomeSet())
	}
	var stale *mc.Divergence
	for i := range res.Divergences {
		if res.Divergences[i].Outcome == "flag=1 data=0" {
			stale = &res.Divergences[i]
		}
	}
	if stale == nil {
		t.Fatalf("expected divergent outcome %q, got %+v", "flag=1 data=0", res.Divergences)
	}
	info := res.PTSB.Outcomes[stale.Outcome]
	if info.Validated {
		t.Errorf("divergent outcome unexpectedly passed Validate")
	}
	if len(stale.MinPrefix) == 0 || len(stale.MinPrefix) >= len(stale.Schedule) {
		t.Errorf("counterexample did not shrink: prefix %v vs schedule %v",
			stale.MinPrefix, stale.Schedule)
	}
	if !strings.Contains(stale.MinOutcome, "data=0") {
		t.Errorf("minimized outcome %q lost the stale read", stale.MinOutcome)
	}
	if len(res.Races) == 0 {
		t.Fatal("race detector missed the plain-flag race")
	}
	var flagRace bool
	for _, r := range res.Races {
		if strings.Contains(r.Site1+r.Site2, "flag") {
			flagRace = true
		}
	}
	if !flagRace {
		t.Errorf("no race on the flag sites: %v", res.Races)
	}
	t.Logf("divergence %q: schedule len %d, minimal prefix %v (outcome %q), %d races",
		stale.Outcome, len(stale.Schedule), stale.MinPrefix, stale.MinOutcome, len(res.Races))
}

// TestSampleSB checks the bounded fallback: random walks plus the default
// schedule must terminate, never claim completeness, and only produce SC
// outcomes on a correctly annotated kernel.
func TestSampleSB(t *testing.T) {
	opts := ptsbOpts()
	opts.Schedules = 40
	res, err := mc.Sample(factory(t, "litmus-sb"), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Error("random sampling must not report a complete exploration")
	}
	if res.Runs != 40 {
		t.Errorf("ran %d schedules, want 40", res.Runs)
	}
	if !res.AllValidated() {
		t.Errorf("sampled run failed validation: %+v", res.Outcomes)
	}
	if _, ok := res.Outcomes["r0=0 r1=0"]; ok {
		t.Error("sampling produced the SC-forbidden SB outcome")
	}
}

// TestReplayDeterminism re-runs a recorded schedule and requires the same
// outcome — the property every DPOR and shrink step depends on.
func TestReplayDeterminism(t *testing.T) {
	res, err := mc.Explore(factory(t, "litmus-mp"), ptsbOpts())
	if err != nil {
		t.Fatal(err)
	}
	for outcome, info := range res.Outcomes {
		div, err := mc.ReplaySchedule(factory(t, "litmus-mp"), ptsbOpts(), info.Schedule)
		if err != nil {
			t.Fatalf("replaying %v: %v", info.Schedule, err)
		}
		if div != outcome {
			t.Errorf("replay of %v produced %q, recorded %q", info.Schedule, div, outcome)
		}
	}
}
