// Package mc is a stateless model checker for the simulated machine: it
// drives the deterministic simulator through all relevant thread
// interleavings and machine-checks two properties the rest of the repository
// only asserts:
//
//   - SC-equivalence of the PTSB under code-centric consistency: for a
//     correctly annotated program, the set of observable outcomes with page
//     twinning armed everywhere equals the set under the unmonitored
//     sequentially-consistent baseline (the paper's Lemma 3.1, checked
//     per-kernel by exhaustive exploration instead of proved).
//   - Data-race freedom, via a vector-clock happens-before detector fed by
//     the same event stream (CCC region callbacks and psync operations are
//     the synchronization vocabulary).
//
// The exploration is classic dynamic partial-order reduction (Flanagan &
// Godefroid, POPL'05) by re-execution: each run is one schedule, recorded as
// the sequence of scheduler decisions; reversible conflicts found in the
// trace seed backtrack points, and sleep sets prune redundant siblings. A
// controlled scheduler (machine.Scheduler) replaces the min-clock policy so
// the interleaving is exactly the decision sequence, and a core.Observer
// taps every access, region boundary, sync point and wake edge.
//
// Conflict granularity is the checker's one PTSB-specific insight: under
// page twinning, two accesses to the *same page* are dependent even on
// different cache lines, because the first private write snapshots the whole
// page (a later plain read of any byte of that page reads the snapshot, not
// the shared original). Exploring PTSB configurations with cache-line
// conflicts is therefore unsound — the litmus-brokenfence divergence is only
// reachable by reversing two same-page, different-line writes. The explorer
// uses page-granular conflicts whenever the PTSB is armed and line-granular
// conflicts for the baseline. For the same reason a PTSB commit is treated
// as a write to every page the thread dirtied since its last sync point.
package mc

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/tmi/workload"
)

// Factory builds a fresh workload instance for one run. Exploration
// re-executes the program many times and workloads keep per-run state
// (result registers), so every run needs its own instance.
type Factory func() (workload.Workload, error)

// Options configures one exploration of one system configuration.
type Options struct {
	// Setup selects the system under exploration (core.Pthreads for the SC
	// reference, core.TMIAlloc with ForceProtect for the PTSB).
	Setup core.Setup
	// ForceProtect arms the PTSB over the whole heap from startup (only
	// meaningful for TMI setups). Also switches conflict detection to page
	// granularity — see the package comment.
	ForceProtect bool
	// Threads overrides the workload's default thread count when > 0.
	Threads int
	// Seed fixes the simulator's determinism; it must not vary between runs
	// of one exploration (replay depends on it). Defaults to 1.
	Seed int64
	// MaxRuns bounds the number of executions in exhaustive modes (safety
	// valve, default 50000). Exceeding it leaves Complete=false.
	MaxRuns int
	// MaxEvents bounds scheduler decisions per run (default 20000); a run
	// exceeding it fails the exploration — the workload is too large for
	// exhaustive checking and should use Sample instead.
	MaxEvents int
	// Race enables the vector-clock race detector on every explored run.
	Race bool
	// Schedules is the number of random-walk runs for Sample.
	Schedules int
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxRuns <= 0 {
		o.MaxRuns = 50000
	}
	if o.MaxEvents <= 0 {
		o.MaxEvents = 20000
	}
	if o.Schedules <= 0 {
		o.Schedules = 64
	}
	return o
}

// OutcomeInfo aggregates the runs that produced one outcome fingerprint.
type OutcomeInfo struct {
	Outcome string `json:"outcome"`
	Count   int    `json:"count"`
	// Schedule is the full decision sequence (thread IDs) of the first run
	// that produced this outcome.
	Schedule []int `json:"schedule,omitempty"`
	// Validated reports whether that run passed the workload's Validate.
	Validated     bool   `json:"validated"`
	ValidationErr string `json:"validation_err,omitempty"`
}

// RaceReport is one data race: an unordered pair of accesses to the same
// byte, at least one a write, not both synchronization operations. Races are
// deduplicated by unordered PC pair across all explored schedules.
type RaceReport struct {
	Site1  string `json:"site1"`
	Site2  string `json:"site2"`
	PC1    uint64 `json:"pc1"`
	PC2    uint64 `json:"pc2"`
	TID1   int    `json:"tid1"`
	TID2   int    `json:"tid2"`
	Write1 bool   `json:"write1"`
	Write2 bool   `json:"write2"`
	Addr   uint64 `json:"addr"`
	// Schedule is the decision sequence of the run the race was first
	// observed in (a witness interleaving).
	Schedule []int `json:"schedule,omitempty"`
}

func (r RaceReport) String() string {
	return fmt.Sprintf("race on 0x%x: T%d %s (%s) vs T%d %s (%s)",
		r.Addr, r.TID1, rw(r.Write1), r.Site1, r.TID2, rw(r.Write2), r.Site2)
}

func rw(w bool) string {
	if w {
		return "write"
	}
	return "read"
}

// ExploreResult is the outcome of one exploration.
type ExploreResult struct {
	Workload string `json:"workload"`
	Setup    string `json:"setup"`
	Mode     string `json:"mode"` // "dpor", "brute", "random"
	// Runs counts every execution, including sleep-blocked ones.
	Runs int `json:"runs"`
	// SleepBlocked counts runs abandoned because every enabled thread was in
	// the sleep set (redundant interleavings DPOR pruned mid-flight).
	SleepBlocked int `json:"sleep_blocked"`
	// Complete reports that the exploration exhausted the schedule space
	// (always false for Mode "random").
	Complete bool `json:"complete"`
	// MaxDepth is the longest decision sequence seen.
	MaxDepth int `json:"max_depth"`
	// Outcomes maps outcome fingerprint to aggregate info.
	Outcomes map[string]*OutcomeInfo `json:"outcomes"`
	// Races are the deduplicated data races across all runs.
	Races []RaceReport `json:"races,omitempty"`
}

// OutcomeSet returns the sorted outcome fingerprints observed.
func (r *ExploreResult) OutcomeSet() []string {
	out := make([]string, 0, len(r.Outcomes))
	for o := range r.Outcomes {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// AllValidated reports whether every completed run passed Validate.
func (r *ExploreResult) AllValidated() bool {
	for _, info := range r.Outcomes {
		if !info.Validated {
			return false
		}
	}
	return true
}

// Explore exhaustively enumerates the relevant interleavings of the
// workload under opts using sleep-set DPOR and returns the aggregated
// outcome set (and races, if enabled).
func Explore(f Factory, opts Options) (*ExploreResult, error) {
	e, err := newExplorer(f, opts, modeDPOR)
	if err != nil {
		return nil, err
	}
	if err := e.exploreTree(); err != nil {
		return nil, err
	}
	return e.res, nil
}

// EnumerateAll explores every interleaving by brute-force DFS, with no
// reduction. Exponential; use only to cross-validate DPOR on small kernels.
func EnumerateAll(f Factory, opts Options) (*ExploreResult, error) {
	e, err := newExplorer(f, opts, modeBrute)
	if err != nil {
		return nil, err
	}
	if err := e.exploreTree(); err != nil {
		return nil, err
	}
	return e.res, nil
}

// Sample runs opts.Schedules random-walk schedules (uniform choice among
// runnable threads at every decision) — the bounded fallback for workloads
// too large to explore exhaustively. The first run is the deterministic
// default schedule so the common-case outcome is always present.
func Sample(f Factory, opts Options) (*ExploreResult, error) {
	e, err := newExplorer(f, opts, modeRandom)
	if err != nil {
		return nil, err
	}
	if err := e.sample(); err != nil {
		return nil, err
	}
	return e.res, nil
}
