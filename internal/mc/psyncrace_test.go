package mc_test

// Race-detector coverage for every psync primitive: each fixture comes in a
// race-free variant (synchronization orders the conflicting accesses — the
// detector must stay silent) and a seeded-racy variant (one access escapes
// the discipline — the detector must fire). The fixtures are deliberately
// tiny, but they run under Sample rather than Explore: mutex acquisition
// spins before blocking, so exhaustive exploration of lock-heavy code
// explodes combinatorially. Races here are value-independent, so any
// schedule — including the default one Sample always runs first — exhibits
// the missing happens-before edge.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/mc"
	"repro/tmi/workload"
)

// mutexWL: two threads each increment a shared counter once under a mutex.
// Racy variant: thread 1 skips the lock.
type mutexWL struct {
	racy     bool
	ctr      uint64
	mu       workload.Mutex
	sLd, sSt workload.Site
}

func (w *mutexWL) Name() string { return "mcfix-mutex" }
func (w *mutexWL) Info() workload.Info {
	return workload.Info{Threads: 2, FootprintMB: 1, Desc: "mutex-guarded counter"}
}
func (w *mutexWL) Setup(env workload.Env) error {
	w.ctr = env.Alloc(env.PageSize(), env.PageSize())
	w.mu = env.NewMutex("fix.mu")
	w.sLd = env.Site("fix.ctr_load", workload.SiteLoad, 8)
	w.sSt = env.Site("fix.ctr_store", workload.SiteStore, 8)
	return nil
}
func (w *mutexWL) Body(t workload.Thread) {
	if w.racy && t.ID() == 1 {
		t.Store(w.sSt, w.ctr, t.Load(w.sLd, w.ctr)+1)
		return
	}
	t.Lock(w.mu)
	t.Store(w.sSt, w.ctr, t.Load(w.sLd, w.ctr)+1)
	t.Unlock(w.mu)
}
func (w *mutexWL) Validate(env workload.Env) error {
	if !w.racy {
		if got := env.Load(w.ctr, 8); got != 2 {
			return fmt.Errorf("mcfix-mutex: counter = %d, want 2", got)
		}
	}
	return nil
}

// rwlockWL: thread 0 writes under the write lock, thread 1 reads under the
// read lock. Racy variant: the reader skips the lock.
type rwlockWL struct {
	racy     bool
	x        uint64
	rw       workload.RWMutex
	sLd, sSt workload.Site
}

func (w *rwlockWL) Name() string { return "mcfix-rwlock" }
func (w *rwlockWL) Info() workload.Info {
	return workload.Info{Threads: 2, FootprintMB: 1, Desc: "rwlock-guarded read"}
}
func (w *rwlockWL) Setup(env workload.Env) error {
	w.x = env.Alloc(env.PageSize(), env.PageSize())
	w.rw = env.NewRWMutex("fix.rw")
	w.sLd = env.Site("fix.x_load", workload.SiteLoad, 8)
	w.sSt = env.Site("fix.x_store", workload.SiteStore, 8)
	return nil
}
func (w *rwlockWL) Body(t workload.Thread) {
	if t.ID() == 0 {
		t.WLock(w.rw)
		t.Store(w.sSt, w.x, 1)
		t.WUnlock(w.rw)
		return
	}
	if w.racy {
		t.Load(w.sLd, w.x)
		return
	}
	t.RLock(w.rw)
	t.Load(w.sLd, w.x)
	t.RUnlock(w.rw)
}
func (w *rwlockWL) Validate(env workload.Env) error { return nil }

// barrierWL: thread 0 publishes before the barrier, thread 1 consumes after
// it. Racy variant: the consumer reads *before* arriving at the barrier, so
// nothing orders it against the producer's write.
type barrierWL struct {
	racy     bool
	x        uint64
	bar      workload.Barrier
	sLd, sSt workload.Site
}

func (w *barrierWL) Name() string { return "mcfix-barrier" }
func (w *barrierWL) Info() workload.Info {
	return workload.Info{Threads: 2, FootprintMB: 1, Desc: "barrier-ordered publish"}
}
func (w *barrierWL) Setup(env workload.Env) error {
	w.x = env.Alloc(env.PageSize(), env.PageSize())
	w.bar = env.NewBarrier("fix.bar", env.Threads())
	w.sLd = env.Site("fix.x_load", workload.SiteLoad, 8)
	w.sSt = env.Site("fix.x_store", workload.SiteStore, 8)
	return nil
}
func (w *barrierWL) Body(t workload.Thread) {
	if t.ID() == 0 {
		t.Store(w.sSt, w.x, 1)
		t.Wait(w.bar)
		return
	}
	if w.racy {
		t.Load(w.sLd, w.x)
		t.Wait(w.bar)
		return
	}
	t.Wait(w.bar)
	t.Load(w.sLd, w.x)
}
func (w *barrierWL) Validate(env workload.Env) error { return nil }

// spinpoolWL packs two lock words into one cache line with NewMutexAt (the
// spinlockpool idiom). Clean variant: each thread takes its own pooled lock
// and bumps its own counter — the counters falsely share a line, which is a
// layout problem, not a race, and the detector must stay silent. Racy
// variant: both threads bump counter 0, each under its *own* lock — distinct
// locks order nothing.
type spinpoolWL struct {
	racy     bool
	c0, c1   uint64
	mu       [2]workload.Mutex
	sLd, sSt workload.Site
}

func (w *spinpoolWL) Name() string { return "mcfix-spinpool" }
func (w *spinpoolWL) Info() workload.Info {
	return workload.Info{Threads: 2, FootprintMB: 1, Desc: "packed spinlock pool"}
}
func (w *spinpoolWL) Setup(env workload.Env) error {
	words := env.Alloc(64, 64) // both lock words on one line
	w.mu[0] = env.NewMutexAt("fix.pool0", words)
	w.mu[1] = env.NewMutexAt("fix.pool1", words+8)
	ctrs := env.Alloc(64, 64) // both counters on one (falsely shared) line
	w.c0, w.c1 = ctrs, ctrs+8
	w.sLd = env.Site("fix.pool_load", workload.SiteLoad, 8)
	w.sSt = env.Site("fix.pool_store", workload.SiteStore, 8)
	return nil
}
func (w *spinpoolWL) Body(t workload.Thread) {
	id := t.ID()
	ctr := w.c0
	if id == 1 && !w.racy {
		ctr = w.c1
	}
	t.Lock(w.mu[id])
	t.Store(w.sSt, ctr, t.Load(w.sLd, ctr)+1)
	t.Unlock(w.mu[id])
}
func (w *spinpoolWL) Validate(env workload.Env) error { return nil }

func sampleRaces(t *testing.T, w func() workload.Workload, opts mc.Options) []mc.RaceReport {
	t.Helper()
	opts.Race = true
	opts.Schedules = 40
	res, err := mc.Sample(func() (workload.Workload, error) { return w(), nil }, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllValidated() {
		t.Fatalf("fixture failed validation: %+v", res.Outcomes)
	}
	return res.Races
}

func TestPsyncRaceDetection(t *testing.T) {
	cases := []struct {
		name string
		make func(racy bool) workload.Workload
		site string // substring expected in the racy report's sites
	}{
		{"mutex", func(r bool) workload.Workload { return &mutexWL{racy: r} }, "fix.ctr"},
		{"rwlock", func(r bool) workload.Workload { return &rwlockWL{racy: r} }, "fix.x"},
		{"barrier", func(r bool) workload.Workload { return &barrierWL{racy: r} }, "fix.x"},
		{"spinpool", func(r bool) workload.Workload { return &spinpoolWL{racy: r} }, "fix.pool"},
	}
	for _, tc := range cases {
		for _, cfg := range []struct {
			label string
			opts  mc.Options
		}{
			{"baseline", mc.BaselineOptions()},
			{"ptsb", mc.PTSBOptions()},
		} {
			t.Run(tc.name+"/"+cfg.label, func(t *testing.T) {
				if races := sampleRaces(t, func() workload.Workload { return tc.make(false) }, cfg.opts); len(races) != 0 {
					t.Errorf("race-free variant reported races: %v", races)
				}
				races := sampleRaces(t, func() workload.Workload { return tc.make(true) }, cfg.opts)
				if len(races) == 0 {
					t.Fatal("seeded race not detected")
				}
				var hit bool
				for _, r := range races {
					if strings.Contains(r.Site1+r.Site2, tc.site) {
						hit = true
					}
				}
				if !hit {
					t.Errorf("no race mentions site %q: %v", tc.site, races)
				}
				t.Logf("%s/%s: %d race(s), first: %s", tc.name, cfg.label, len(races), races[0])
			})
		}
	}
}
