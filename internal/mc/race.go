package mc

// Vector-clock happens-before race detection over the observer event
// stream. The synchronization vocabulary is exactly what the CCC annotation
// contract declares synchronizing:
//
//   - atomic accesses (acquire+release join on a per-address clock);
//   - runtime-library accesses (psync lock words, barrier words — the
//     synchronization runtime is below the annotation pass and trusted);
//   - plain accesses inside an assembly region (annotated as synchronizing
//     by the EnterAsm/ExitAsm callbacks);
//   - scheduler wake edges (Unblock: the wakee inherits the waker's clock);
//   - psync sync boundaries (epoch increments at acquire/release).
//
// Two accesses race when they touch a common byte, at least one writes,
// they are unordered by happens-before, and they are not both
// synchronization operations. Detection is value-independent, so a race is
// usually visible in many schedules — including the default one — but
// lock-release edges can mask races in some interleavings, which is why the
// detector runs on every explored schedule and reports are deduplicated by
// unordered PC pair.

import "repro/internal/core"

type accEpoch struct {
	tid   int
	clk   uint32
	pc    uint64
	site  string
	sync  bool
	write bool
}

type byteState struct {
	w     *accEpoch
	reads map[int]*accEpoch
}

type raceDetector struct {
	n      int
	vc     []vclock
	addrVC map[uint64]vclock
	bytes  map[uint64]*byteState
	races  []RaceReport
	seen   map[[2]uint64]bool
}

func newRaceDetector(threads int) *raceDetector {
	d := &raceDetector{
		n:      threads,
		vc:     make([]vclock, threads),
		addrVC: make(map[uint64]vclock),
		bytes:  make(map[uint64]*byteState),
		seen:   make(map[[2]uint64]bool),
	}
	for i := range d.vc {
		d.vc[i] = make(vclock, threads)
		d.vc[i][i] = 1 // distinguish "never synchronized" epochs per thread
	}
	return d
}

// ordered reports whether the recorded epoch happens-before thread t's
// current time.
func (d *raceDetector) ordered(e *accEpoch, t int) bool {
	return e.clk <= d.vc[t][e.tid]
}

func (d *raceDetector) onAccess(info *core.AccessInfo, inAsm bool) {
	t := info.TID
	syncish := info.Atomic || info.Runtime || inAsm
	if syncish {
		if l := d.addrVC[info.Addr]; l != nil {
			d.vc[t].join(l) // acquire
		}
	}
	ep := &accEpoch{
		tid: t, clk: d.vc[t][t], pc: info.PC, site: info.Site,
		sync: syncish, write: info.Write,
	}
	for b := info.Addr; b < info.Addr+uint64(info.Size); b++ {
		st := d.bytes[b]
		if st == nil {
			st = &byteState{reads: make(map[int]*accEpoch)}
			d.bytes[b] = st
		}
		if w := st.w; w != nil && w.tid != t && !(w.sync && syncish) && !d.ordered(w, t) {
			d.report(w, ep, b)
		}
		if info.Write {
			for _, r := range st.reads {
				if r.tid != t && !(r.sync && syncish) && !d.ordered(r, t) {
					d.report(r, ep, b)
				}
			}
			st.w = ep
		} else {
			st.reads[t] = ep
		}
	}
	if syncish {
		// Release: publish the thread's clock on the address, then advance
		// the local epoch so later plain accesses are distinguishable.
		cp := make(vclock, d.n)
		cp.join(d.vc[t])
		d.addrVC[info.Addr] = cp
		d.vc[t][t]++
	}
}

func (d *raceDetector) onSync(tid int) {
	d.vc[tid][tid]++
}

func (d *raceDetector) onWake(waker, wakee int) {
	d.vc[wakee].join(d.vc[waker])
	d.vc[waker][waker]++
}

func (d *raceDetector) report(prev, cur *accEpoch, addr uint64) {
	key := [2]uint64{prev.pc, cur.pc}
	if key[0] > key[1] {
		key[0], key[1] = key[1], key[0]
	}
	if d.seen[key] {
		return
	}
	d.seen[key] = true
	d.races = append(d.races, RaceReport{
		Site1: prev.site, Site2: cur.site,
		PC1: prev.pc, PC2: cur.pc,
		TID1: prev.tid, TID2: cur.tid,
		Write1: prev.write, Write2: cur.write,
		Addr: addr,
	})
}
