package mc

// Vector-clock happens-before race detection over the observer event
// stream, with per-ordering C11-style synchronization semantics (following
// C11Tester's clock treatment, simplified to this machine's vocabulary):
//
//   - a release-or-stronger atomic write publishes the writer's clock on a
//     per-address clock (replacing the previous publication — the last
//     write is what a later read reads, and a weaker write breaks the
//     release sequence);
//   - an acquire-or-stronger atomic read/RMW joins the per-address clock;
//   - relaxed atomics do neither (they only provide atomicity);
//   - runtime-library accesses (psync lock words, barrier words) and plain
//     accesses inside assembly regions synchronize with full
//     acquire+release semantics — the synchronization runtime is below the
//     annotation pass and trusted, and assembly guarantees TSO-style AMBSA;
//   - standalone fences synchronize per Alglave et al.: a release fence
//     snapshots the thread's clock, and every later atomic write publishes
//     that snapshot (even a relaxed one); an acquire fence joins the
//     per-address clocks of every atomic read the thread performed before
//     it (accumulated in a pending-acquire clock);
//   - scheduler wake edges (Unblock: the wakee inherits the waker's clock);
//   - psync sync boundaries (epoch increments at acquire/release).
//
// There is no global seq_cst clock: C11's happens-before is po ∪ sw, and
// the seq_cst total order alone does not create hb edges — same-address
// seq_cst accesses already synchronize through the release/acquire rules
// above.
//
// Two accesses race when they touch a common byte, at least one writes,
// they are unordered by happens-before, and they are not both
// synchronization operations (atomics never race with atomics, whatever
// their orders). Detection is value-independent, so a race is usually
// visible in many schedules — including the default one — but
// lock-release edges can mask races in some interleavings, which is why the
// detector runs on every explored schedule and reports are deduplicated by
// unordered PC pair.

import "repro/internal/core"

type accEpoch struct {
	tid   int
	clk   uint32
	pc    uint64
	site  string
	sync  bool
	write bool
}

type byteState struct {
	w     *accEpoch
	reads map[int]*accEpoch
}

type raceDetector struct {
	n      int
	vc     []vclock
	addrVC map[uint64]vclock
	// relFence[t] is the clock snapshot of t's latest release fence; later
	// atomic writes by t publish it. pendAcq[t] accumulates the per-address
	// clocks of t's atomic accesses; an acquire fence joins it into vc[t].
	relFence []vclock
	pendAcq  []vclock
	bytes    map[uint64]*byteState
	races    []RaceReport
	seen     map[[2]uint64]bool
}

func newRaceDetector(threads int) *raceDetector {
	d := &raceDetector{
		n:        threads,
		vc:       make([]vclock, threads),
		addrVC:   make(map[uint64]vclock),
		relFence: make([]vclock, threads),
		pendAcq:  make([]vclock, threads),
		bytes:    make(map[uint64]*byteState),
		seen:     make(map[[2]uint64]bool),
	}
	for i := range d.vc {
		d.vc[i] = make(vclock, threads)
		d.vc[i][i] = 1 // distinguish "never synchronized" epochs per thread
	}
	return d
}

// ordered reports whether the recorded epoch happens-before thread t's
// current time.
func (d *raceDetector) ordered(e *accEpoch, t int) bool {
	return e.clk <= d.vc[t][e.tid]
}

// onAccess processes one access. syncish marks a synchronization operation
// (atomic, runtime or in-asm); acq/rel are its effective acquire/release
// semantics after the ordering is applied.
func (d *raceDetector) onAccess(info *core.AccessInfo, syncish, acq, rel bool) {
	t := info.TID
	if syncish {
		if l := d.addrVC[info.Addr]; l != nil {
			if acq {
				d.vc[t].join(l)
			}
			// Any atomic access feeds the pending-acquire clock: a later
			// acquire fence promotes it to a full join (Alglave et al.).
			if d.pendAcq[t] == nil {
				d.pendAcq[t] = make(vclock, d.n)
			}
			d.pendAcq[t].join(l)
		}
	}
	ep := &accEpoch{
		tid: t, clk: d.vc[t][t], pc: info.PC, site: info.Site,
		sync: syncish, write: info.Write,
	}
	for b := info.Addr; b < info.Addr+uint64(info.Size); b++ {
		st := d.bytes[b]
		if st == nil {
			st = &byteState{reads: make(map[int]*accEpoch)}
			d.bytes[b] = st
		}
		if w := st.w; w != nil && w.tid != t && !(w.sync && syncish) && !d.ordered(w, t) {
			d.report(w, ep, b)
		}
		if info.Write {
			for _, r := range st.reads {
				if r.tid != t && !(r.sync && syncish) && !d.ordered(r, t) {
					d.report(r, ep, b)
				}
			}
			st.w = ep
		} else {
			st.reads[t] = ep
		}
	}
	if syncish {
		if info.Write {
			// Publication: a releasing write publishes the thread's clock
			// (which subsumes any release-fence snapshot); a weaker atomic
			// write after a release fence publishes the fence snapshot; a
			// plain relaxed write publishes nothing and breaks the chain.
			switch {
			case rel:
				cp := make(vclock, d.n)
				cp.join(d.vc[t])
				d.addrVC[info.Addr] = cp
			case d.relFence[t] != nil:
				cp := make(vclock, d.n)
				cp.join(d.relFence[t])
				d.addrVC[info.Addr] = cp
			default:
				delete(d.addrVC, info.Addr)
			}
		}
		// Advance the local epoch so later plain accesses are
		// distinguishable from ones before the synchronization.
		d.vc[t][t]++
	}
}

// onFence processes a standalone fence with the given effective semantics.
func (d *raceDetector) onFence(tid int, acq, rel bool) {
	if acq && d.pendAcq[tid] != nil {
		d.vc[tid].join(d.pendAcq[tid])
		d.pendAcq[tid] = nil
	}
	if rel {
		cp := make(vclock, d.n)
		cp.join(d.vc[tid])
		d.relFence[tid] = cp
	}
	d.vc[tid][tid]++
}

func (d *raceDetector) onSync(tid int) {
	d.vc[tid][tid]++
}

func (d *raceDetector) onWake(waker, wakee int) {
	d.vc[wakee].join(d.vc[waker])
	d.vc[waker][waker]++
}

func (d *raceDetector) report(prev, cur *accEpoch, addr uint64) {
	key := [2]uint64{prev.pc, cur.pc}
	if key[0] > key[1] {
		key[0], key[1] = key[1], key[0]
	}
	if d.seen[key] {
		return
	}
	d.seen[key] = true
	d.races = append(d.races, RaceReport{
		Site1: prev.site, Site2: cur.site,
		PC1: prev.pc, PC2: cur.pc,
		TID1: prev.tid, TID2: cur.tid,
		Write1: prev.write, Write2: cur.write,
		Addr: addr,
	})
}
