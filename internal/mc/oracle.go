package mc

import (
	"fmt"

	"repro/internal/core"
)

// The SC-equivalence oracle: explore the unmonitored baseline (its token
// order IS a sequentially consistent memory order) to enumerate the SC
// outcome set, then explore the PTSB configuration (TMI allocator, CCC on,
// page twinning armed over the whole heap from startup) and flag every
// outcome the baseline cannot produce. Schedules are not comparable across
// configurations (the two runtimes yield different decision counts), so the
// oracle compares outcome *sets*, which is exactly the SC-equivalence
// statement of the paper's Lemma 3.1.

// SCOptions configures an SC-equivalence check.
type SCOptions struct {
	// Threads, Seed, MaxRuns, MaxEvents as in Options.
	Threads   int
	Seed      int64
	MaxRuns   int
	MaxEvents int
	// Race also runs the race detector on every explored schedule (both
	// configurations, deduplicated together).
	Race bool
	// Schedules > 0 switches both sides to bounded random-walk sampling
	// (for workloads too large to explore exhaustively). Sampling can
	// under-enumerate the baseline set, so divergences found this way are
	// replay-confirmed but completeness is lost.
	Schedules int
	// NoShrink skips counterexample minimization.
	NoShrink bool
}

// Divergence is one PTSB outcome the SC baseline cannot produce.
type Divergence struct {
	Outcome string `json:"outcome"`
	// Schedule is the full decision sequence of the witnessing PTSB run.
	Schedule []int `json:"schedule"`
	// MinPrefix is the shortest forced schedule prefix whose default-policy
	// completion still escapes the SC outcome set, and MinOutcome the
	// divergent outcome that completion produces (possibly a different
	// escape than Outcome).
	MinPrefix  []int  `json:"min_prefix"`
	MinOutcome string `json:"min_outcome"`
	// ValidationErr is the workload's own verdict on the witnessing run,
	// when it failed validation.
	ValidationErr string `json:"validation_err,omitempty"`
}

// SCResult is the outcome of an SC-equivalence check.
type SCResult struct {
	Workload string `json:"workload"`
	// Baseline and PTSB are the two explorations.
	Baseline *ExploreResult `json:"baseline"`
	PTSB     *ExploreResult `json:"ptsb"`
	// Divergences lists PTSB outcomes outside the SC set (empty = the
	// configurations are outcome-equivalent over the explored schedules).
	Divergences []Divergence `json:"divergences,omitempty"`
	// Races merges both explorations' race reports (PC-pair deduplicated).
	Races []RaceReport `json:"races,omitempty"`
}

// SCEquivalent reports whether no divergence was found.
func (r *SCResult) SCEquivalent() bool { return len(r.Divergences) == 0 }

// BaselineOptions is the SC-reference configuration CheckSC explores: the
// unmonitored pthreads system, whose token order is an SC memory order.
func BaselineOptions() Options { return Options{Setup: core.Pthreads} }

// PTSBOptions is the system-under-test configuration CheckSC explores: the
// TMI allocator with page twinning armed over the whole heap from startup.
func PTSBOptions() Options { return Options{Setup: core.TMIAlloc, ForceProtect: true} }

// CheckSC explores the workload under the SC baseline and under the PTSB
// and compares outcome sets; divergences are minimized to the shortest
// schedule prefix that still reproduces one.
func CheckSC(f Factory, opts SCOptions) (*SCResult, error) {
	baseOpts := BaselineOptions()
	baseOpts.Threads, baseOpts.Seed = opts.Threads, opts.Seed
	baseOpts.MaxRuns, baseOpts.MaxEvents = opts.MaxRuns, opts.MaxEvents
	baseOpts.Race, baseOpts.Schedules = opts.Race, opts.Schedules
	ptsbOpts := PTSBOptions()
	ptsbOpts.Threads, ptsbOpts.Seed = baseOpts.Threads, baseOpts.Seed
	ptsbOpts.MaxRuns, ptsbOpts.MaxEvents = baseOpts.MaxRuns, baseOpts.MaxEvents
	ptsbOpts.Race, ptsbOpts.Schedules = baseOpts.Race, baseOpts.Schedules

	explore := Explore
	if opts.Schedules > 0 {
		explore = Sample
	}
	base, err := explore(f, baseOpts)
	if err != nil {
		return nil, fmt.Errorf("mc: baseline exploration: %w", err)
	}
	ptsb, err := explore(f, ptsbOpts)
	if err != nil {
		return nil, fmt.Errorf("mc: ptsb exploration: %w", err)
	}
	res := &SCResult{Workload: base.Workload, Baseline: base, PTSB: ptsb}

	seen := make(map[[2]uint64]bool)
	for _, lst := range [][]RaceReport{base.Races, ptsb.Races} {
		for _, race := range lst {
			key := [2]uint64{race.PC1, race.PC2}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			res.Races = append(res.Races, race)
		}
	}

	scSet := make(map[string]bool, len(base.Outcomes))
	for o := range base.Outcomes {
		scSet[o] = true
	}
	for _, outcome := range ptsb.OutcomeSet() {
		if scSet[outcome] {
			continue
		}
		info := ptsb.Outcomes[outcome]
		div := Divergence{
			Outcome:       outcome,
			Schedule:      info.Schedule,
			ValidationErr: info.ValidationErr,
		}
		if !opts.NoShrink {
			prefix, minOut, err := shrinkDivergence(f, ptsbOpts, info.Schedule, scSet)
			if err != nil {
				return nil, fmt.Errorf("mc: shrinking counterexample: %w", err)
			}
			div.MinPrefix, div.MinOutcome = prefix, minOut
		}
		res.Divergences = append(res.Divergences, div)
	}
	return res, nil
}

// ReplaySchedule re-executes one recorded decision sequence (completing with
// the default policy past its end) and returns the outcome it produces.
// Replay is deterministic, so this turns any reported schedule into a
// reproducible witness.
func ReplaySchedule(f Factory, opts Options, schedule []int) (string, error) {
	e, err := newExplorer(f, opts, modeShrink)
	if err != nil {
		return "", err
	}
	rr, err := e.runOnce(schedule, nil, modeShrink, nil)
	if err != nil {
		return "", err
	}
	if rr.abandoned {
		return "", fmt.Errorf("mc: replay of schedule %v was abandoned", schedule)
	}
	return rr.outcome, nil
}

// shrinkDivergence finds the shortest prefix of schedule whose
// default-policy completion still produces an outcome outside scSet. The
// scan is linear from the empty prefix up; the full schedule replays the
// original divergence exactly, so the scan always terminates with one.
func shrinkDivergence(f Factory, opts Options, schedule []int, scSet map[string]bool) ([]int, string, error) {
	e, err := newExplorer(f, opts, modeShrink)
	if err != nil {
		return nil, "", err
	}
	for k := 0; k <= len(schedule); k++ {
		rr, err := e.runOnce(schedule[:k], nil, modeShrink, nil)
		if err != nil {
			return nil, "", err
		}
		if !rr.abandoned && !scSet[rr.outcome] {
			return append([]int(nil), schedule[:k]...), rr.outcome, nil
		}
	}
	return nil, "", fmt.Errorf("divergent schedule %v did not replay", schedule)
}
