package mc_test

// Model-checking tests for the C11-ordering litmus kernels and the
// suggest→apply→verify repair loop. The clean kernels (release/acquire MP,
// fence-mediated SB and MP) get the same treatment as the pre-C11 suite:
// DPOR cross-validated against brute force, then checked SC-equivalent and
// race-free. The relaxed-IRIW fixture is the negative: its designed
// forbidden outcome is reproduced through a pinned witness schedule, and the
// statically-suggested repair set is verified dynamically.

import (
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/mc"
	"repro/tmi/workload"
	"repro/tmi/workloads"
)

func catalogFactory(t *testing.T, name string) mc.Factory {
	t.Helper()
	return func() (workload.Workload, error) { return workloads.ByName(name) }
}

func repairedCatalogFactory(t *testing.T, name string, repairs []workload.Repair) mc.Factory {
	t.Helper()
	return func() (workload.Workload, error) {
		w, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		return workload.Repaired(w, repairs), nil
	}
}

var c11CleanKernels = []string{"litmus-mp-relacq", "litmus-fencesb", "litmus-fencemp"}

// TestC11DPORMatchesBrute cross-validates the reduction on the kernels that
// exercise the per-ordering oracle semantics: release/acquire publication,
// fence clocks, and relaxed non-publication.
func TestC11DPORMatchesBrute(t *testing.T) {
	if testing.Short() {
		t.Skip("brute-force enumeration is slow")
	}
	for _, name := range c11CleanKernels {
		for _, cfg := range []struct {
			label string
			opts  mc.Options
		}{
			{"baseline", baselineOpts()},
			{"ptsb", ptsbOpts()},
		} {
			opts := cfg.opts
			opts.MaxRuns = 2_000_000
			brute, err := mc.EnumerateAll(catalogFactory(t, name), opts)
			if err != nil {
				t.Fatalf("%s/%s: brute: %v", name, cfg.label, err)
			}
			if !brute.Complete {
				t.Fatalf("%s/%s: brute incomplete after %d runs", name, cfg.label, brute.Runs)
			}
			dpor, err := mc.Explore(catalogFactory(t, name), cfg.opts)
			if err != nil {
				t.Fatalf("%s/%s: dpor: %v", name, cfg.label, err)
			}
			if !dpor.Complete {
				t.Fatalf("%s/%s: dpor incomplete after %d runs", name, cfg.label, dpor.Runs)
			}
			if got, want := dpor.OutcomeSet(), brute.OutcomeSet(); !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: dpor outcomes %v != brute outcomes %v", name, cfg.label, got, want)
			}
			t.Logf("%s/%s: brute %d runs, dpor %d runs (%d sleep-blocked)",
				name, cfg.label, brute.Runs, dpor.Runs, dpor.SleepBlocked)
		}
	}
}

// TestC11LitmusSCEquivalence machine-checks Lemma 3.1 on the C11 kernels:
// correctly placed acquire/release orderings and standalone fences keep the
// PTSB outcome set equal to the SC baseline's, with no races.
func TestC11LitmusSCEquivalence(t *testing.T) {
	for _, name := range c11CleanKernels {
		t.Run(name, func(t *testing.T) {
			res, err := mc.CheckSC(catalogFactory(t, name), mc.SCOptions{Race: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Baseline.Complete || !res.PTSB.Complete {
				t.Fatalf("incomplete: baseline %d (complete=%v), ptsb %d (complete=%v)",
					res.Baseline.Runs, res.Baseline.Complete, res.PTSB.Runs, res.PTSB.Complete)
			}
			if !res.SCEquivalent() {
				t.Fatalf("SC divergence: %+v", res.Divergences)
			}
			if !res.Baseline.AllValidated() || !res.PTSB.AllValidated() {
				t.Fatal("validation failure")
			}
			if len(res.Races) != 0 {
				t.Fatalf("clean kernel reported races: %v", res.Races)
			}
			t.Logf("%s: baseline %d runs / %d outcomes, ptsb %d runs / %d outcomes",
				name, res.Baseline.Runs, len(res.Baseline.Outcomes),
				res.PTSB.Runs, len(res.PTSB.Outcomes))
		})
	}
}

// iriwRelaxedForbidden is the outcome litmus-iriw-relaxed is designed to
// forbid (readers disagree on the store order) and iriwRelaxedWitness a
// PTSB schedule that produces it, recorded from a full divergence search so
// the test stays deterministic and cheap.
const iriwRelaxedForbidden = "r0=1 r1=0 r2=1 r3=0"

// Recorded minimal prefix from a full divergence search (tmimc -workload
// litmus-iriw-relaxed -expect-divergence); ReplaySchedule completes the
// prefix deterministically.
var iriwRelaxedWitness = []int{2, 1, 1, 1, 3}

// TestIRIWRelaxedForbiddenWitness replays the pinned schedule under the PTSB
// and requires the designed forbidden outcome: without acquire ordering on
// the leading loads, each reader can observe one store from its twinned page
// and miss the other, disagreeing on the store order. The outcome must also
// fail the workload's own Validate — it is non-SC by construction.
func TestIRIWRelaxedForbiddenWitness(t *testing.T) {
	outcome, err := mc.ReplaySchedule(catalogFactory(t, "litmus-iriw-relaxed"), ptsbOpts(), iriwRelaxedWitness)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != iriwRelaxedForbidden {
		t.Fatalf("witness schedule produced %q, want %q", outcome, iriwRelaxedForbidden)
	}
}

// TestIRIWRelaxedBaselineExcludesForbidden: the SC baseline, explored to
// completion, never produces the forbidden outcome — so the witness above is
// a genuine divergence, not an SC behavior the fixture mislabels.
func TestIRIWRelaxedBaselineExcludesForbidden(t *testing.T) {
	if testing.Short() {
		t.Skip("full 4-thread baseline exploration is slow")
	}
	res, err := mc.Explore(catalogFactory(t, "litmus-iriw-relaxed"), baselineOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("baseline incomplete after %d runs", res.Runs)
	}
	if _, ok := res.Outcomes[iriwRelaxedForbidden]; ok {
		t.Fatalf("SC baseline produced the forbidden outcome %q", iriwRelaxedForbidden)
	}
	t.Logf("baseline: %d runs, %d outcomes", res.Runs, len(res.Outcomes))
}

// TestBrokenFenceRepairLoop closes the loop end to end on the MP fixture:
// the statically suggested set repairs the kernel (SC-equivalent and
// race-free under full exploration), and dropping any single repair
// re-breaks it dynamically — the repair set is dynamically minimal.
func TestBrokenFenceRepairLoop(t *testing.T) {
	sugg, err := analysis.Suggest(
		func() (workload.Workload, error) { return workloads.ByName("litmus-brokenfence") },
		analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	repairs := sugg.Repairs()
	if !sugg.Clean || len(repairs) != 2 {
		t.Fatalf("suggest: clean=%v repairs=%v", sugg.Clean, repairs)
	}

	full, err := mc.CheckSC(repairedCatalogFactory(t, "litmus-brokenfence", repairs), mc.SCOptions{Race: true})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Baseline.Complete || !full.PTSB.Complete {
		t.Fatal("repaired exploration incomplete")
	}
	if !full.SCEquivalent() || len(full.Races) != 0 {
		t.Fatalf("repaired kernel not verified: sc=%v races=%v", full.SCEquivalent(), full.Races)
	}

	for i := range repairs {
		partial := append(append([]workload.Repair{}, repairs[:i]...), repairs[i+1:]...)
		res, err := mc.CheckSC(repairedCatalogFactory(t, "litmus-brokenfence", partial), mc.SCOptions{Race: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.SCEquivalent() && len(res.Races) == 0 {
			t.Errorf("dropping %v leaves the kernel dynamically clean — repair set not minimal", repairs[i])
		}
	}
}

// TestIRIWRelaxedRepairRaces: the race half of the relaxed-IRIW repair set
// is dynamically minimal. The full set runs race-free under a bounded PTSB
// exploration; dropping either atomicity repair re-exposes its data race
// within the same budget. (The acquire upgrades are statically — not
// dynamically — minimal: this machine's relaxed atomics run directly on
// shared memory, so an all-atomic program is SC regardless of orderings;
// see DESIGN.md §13. The full SC-equivalence proof for the repaired kernel
// runs in the `make check` suggest lane, where the baseline is explored to
// completion.)
func TestIRIWRelaxedRepairRaces(t *testing.T) {
	sugg, err := analysis.Suggest(
		func() (workload.Workload, error) { return workloads.ByName("litmus-iriw-relaxed") },
		analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	repairs := sugg.Repairs()
	if !sugg.Clean || len(repairs) != 4 {
		t.Fatalf("suggest: clean=%v repairs=%v", sugg.Clean, repairs)
	}

	explore := func(set []workload.Repair) *mc.ExploreResult {
		t.Helper()
		opts := ptsbOpts()
		opts.Race = true
		opts.MaxRuns = 400
		res, err := mc.Explore(repairedCatalogFactory(t, "litmus-iriw-relaxed", set), opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	if res := explore(repairs); len(res.Races) != 0 {
		t.Fatalf("full repair set still races: %v", res.Races)
	}
	for i, r := range repairs {
		if r.Kind != workload.RepairAtomic {
			continue
		}
		partial := append(append([]workload.Repair{}, repairs[:i]...), repairs[i+1:]...)
		if res := explore(partial); len(res.Races) == 0 {
			t.Errorf("dropping %v exposes no race within the budget", r)
		}
	}
}
