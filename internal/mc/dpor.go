package mc

// Exhaustive exploration: depth-first enumeration over the schedule tree,
// with (modeDPOR) sleep-set dynamic partial-order reduction — backtrack
// points are seeded only where the last trace showed a reversible conflict —
// or (modeBrute) no reduction at all, for cross-validation on tiny kernels.

// vclock is a per-thread vector clock over decision ordinals.
type vclock []uint32

func (v vclock) join(o vclock) {
	for i, x := range o {
		if x > v[i] {
			v[i] = x
		}
	}
}

// addBacktracks analyzes one completed (possibly partial) trace: it computes
// the happens-before order over decisions — program order, conflict order
// and wake edges — and for every reversible conflicting pair (j, i) inserts
// a backtrack point at node j.
//
// A pair is a reversible race when the decisions conflict, belong to
// different threads, and the earlier one does not happen-before the later
// thread's *previous* decision (if it does, the order is forced by other
// synchronization and reversing it is impossible). All reversible pairs are
// considered, which over-approximates the classic "last racing transition"
// rule — extra backtrack points cost redundant (mostly sleep-blocked) runs,
// never soundness.
func addBacktracks(decisions []decision, nodes []*node, nthreads int) {
	clocks := make([]vclock, len(decisions))
	ordinal := make([]int, len(decisions))
	lastOf := make([]int, nthreads)
	cnt := make([]int, nthreads)
	wakeVC := make([]vclock, nthreads)
	for i := range lastOf {
		lastOf[i] = -1
	}
	for i := range decisions {
		d := &decisions[i]
		p := lastOf[d.tid]
		for j := 0; j < i; j++ {
			dj := &decisions[j]
			if dj.tid == d.tid || !conflicts(dj.sigs, d.sigs) {
				continue
			}
			if p >= 0 && clocks[p][dj.tid] >= uint32(ordinal[j]) {
				continue // e_j →hb previous decision of tid(i): order is forced
			}
			n := nodes[j]
			if intsContain(dj.enabled, d.tid) {
				n.backtrack[d.tid] = true
			} else {
				for _, t := range dj.enabled {
					n.backtrack[t] = true
				}
			}
		}
		vc := make(vclock, nthreads)
		if p >= 0 {
			vc.join(clocks[p])
		}
		if wakeVC[d.tid] != nil {
			vc.join(wakeVC[d.tid])
			wakeVC[d.tid] = nil
		}
		for j := 0; j < i; j++ {
			if decisions[j].tid != d.tid && conflicts(decisions[j].sigs, d.sigs) {
				vc.join(clocks[j])
			}
		}
		cnt[d.tid]++
		ordinal[i] = cnt[d.tid]
		vc[d.tid] = uint32(ordinal[i])
		clocks[i] = vc
		lastOf[d.tid] = i
		for _, wakee := range d.wakes {
			if wakeVC[wakee] == nil {
				wakeVC[wakee] = make(vclock, nthreads)
			}
			wakeVC[wakee].join(vc)
		}
	}
}

func intsContain(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// exploreTree is the DFS driver shared by modeDPOR and modeBrute: execute a
// schedule, fold its trace into the persistent node stack, derive new branch
// candidates, and re-execute from the deepest unexplored branch until the
// tree is exhausted (or the run budget is).
func (e *explorer) exploreTree() error {
	var nodes []*node
	var path []int
	var forced []int
	for {
		if e.res.Runs >= e.opts.MaxRuns {
			e.res.Complete = false
			return nil
		}
		rr, err := e.runOnce(forced, nodes, e.mode, nil)
		if err != nil {
			return err
		}
		e.record(rr)

		// Fold the trace into the node stack. Replay is deterministic, so
		// nodes along the shared prefix are unchanged; new depths get fresh
		// nodes, stale deeper nodes from a longer previous run are dropped.
		for i := len(nodes); i < len(rr.decisions); i++ {
			nodes = append(nodes, newNode(rr.decisions[i].enabled))
		}
		nodes = nodes[:len(rr.decisions)]
		path = path[:0]
		for i := range rr.decisions {
			d := &rr.decisions[i]
			path = append(path, d.tid)
			nodes[i].done[d.tid] = d.sigs
			nodes[i].sleepIn = d.sleepIn
		}
		if e.mode == modeDPOR {
			addBacktracks(rr.decisions, nodes, e.threads)
		}

		// Deepest-first branch selection.
		branch, choice := -1, -1
		for k := len(nodes) - 1; k >= 0 && branch < 0; k-- {
			n := nodes[k]
			var cands []int
			if e.mode == modeBrute {
				cands = n.enabled
			} else {
				cands = sortedKeys(n.backtrack)
			}
			for _, c := range cands {
				if _, explored := n.done[c]; explored {
					continue
				}
				// A backtrack candidate asleep on entry is still explored.
				// The sleep entry only certifies that the candidate's
				// *immediate* transition reaches a covered state; the
				// backtrack request wants a race reversed deeper in the
				// subtree, and treating "asleep" as "subtree covered" loses
				// interleavings (naive DPOR + sleep sets is incomplete —
				// cf. source sets, Abdulla et al.; litmus-iriw's SC set
				// shrank from 15 to 13 outcomes under the old skip).
				// Exploring the sleeping candidate is redundant at worst,
				// so completeness wins over pruning here; in-run sleep
				// evolution still abandons covered completions.
				branch, choice = k, c
				break
			}
		}
		if branch < 0 {
			e.res.Complete = true
			return nil
		}
		nodes = nodes[:branch+1]
		forced = append(append([]int(nil), path[:branch]...), choice)
	}
}

func findSleep(s []sleepEntry, tid int) *sleepEntry {
	for i := range s {
		if s[i].tid == tid {
			return &s[i]
		}
	}
	return nil
}
