package mc

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/sim/machine"
	"repro/tmi/workload"
)

type mode int

const (
	modeDPOR mode = iota
	modeBrute
	modeRandom
	// modeShrink replays a forced prefix and completes with the default
	// policy, with no sleep sets — used for counterexample minimization.
	modeShrink
)

func (m mode) String() string {
	switch m {
	case modeDPOR:
		return "dpor"
	case modeBrute:
		return "brute"
	case modeRandom:
		return "random"
	case modeShrink:
		return "shrink"
	}
	return "?"
}

// lineShift/pageShift select conflict granularity: coherence units (64-byte
// lines) for the baseline, twinning units (4 KiB pages) under the PTSB.
const (
	lineShift = 6
	pageShift = 12
)

// sig is one memory effect of a transition, at conflict granularity.
type sig struct {
	unit  uint64
	write bool
}

func conflicts(a, b []sig) bool {
	for _, x := range a {
		for _, y := range b {
			if x.unit == y.unit && (x.write || y.write) {
				return true
			}
		}
	}
	return false
}

// sleepEntry is a thread in the sleep set together with the signatures of
// its next transition (known from the sibling run that executed it).
type sleepEntry struct {
	tid  int
	sigs []sig
}

// decision is one scheduler choice and everything that executed under it:
// the events between this Pick and the next belong to the chosen thread.
type decision struct {
	tid     int
	enabled []int
	sigs    []sig
	wakes   []int
	sleepIn []sleepEntry
}

// node is the persistent per-depth exploration state shared across runs.
type node struct {
	enabled   []int
	done      map[int][]sig // explored choices → their transition signatures
	backtrack map[int]bool
	sleepIn   []sleepEntry
}

func newNode(enabled []int) *node {
	return &node{
		enabled:   append([]int(nil), enabled...),
		done:      make(map[int][]sig),
		backtrack: make(map[int]bool),
	}
}

// runner drives one execution: it is both the machine.Scheduler (control)
// and the core.Observer (observation) for that run.
type runner struct {
	ex     *explorer
	mode   mode
	forced []int
	nodes  []*node // exploration tree, for sleep seeding along the prefix
	rng    *rand.Rand

	depth     int
	cur       *decision
	decisions []decision
	sleep     []sleepEntry
	asmDepth  []int
	ordStack  [][]machine.RegionKind // per-thread atomic-region nesting
	dirty     []map[uint64]bool      // per-thread pages plain-written since last flush
	det       *raceDetector

	abandoned bool
	errRun    error

	outcome    string
	gotOutcome bool
}

var _ machine.Scheduler = (*runner)(nil)
var _ core.Observer = (*runner)(nil)

// Pick is the scheduling point: it closes the previous decision, evolves the
// sleep set, and chooses the next thread per the runner's mode.
func (r *runner) Pick(ready []*machine.Thread) *machine.Thread {
	r.closeDecision()
	d := r.depth
	if d >= r.ex.opts.MaxEvents {
		r.errRun = fmt.Errorf("mc: run exceeded %d decisions (raise MaxEvents or use Sample)", r.ex.opts.MaxEvents)
		return nil
	}
	// Entering a node along the forced prefix puts every previously explored
	// sibling to sleep: the subtrees under them are already covered.
	if r.mode == modeDPOR && d < len(r.forced) && d < len(r.nodes) {
		for _, tid := range sortedKeys(r.nodes[d].done) {
			if tid != r.forced[d] {
				r.addSleep(tid, r.nodes[d].done[tid])
			}
		}
	}
	ids := make([]int, len(ready))
	for i, t := range ready {
		ids[i] = t.ID
	}
	var chosen *machine.Thread
	switch {
	case d < len(r.forced):
		for _, t := range ready {
			if t.ID == r.forced[d] {
				chosen = t
				break
			}
		}
		if chosen == nil {
			r.errRun = fmt.Errorf("mc: replay diverged at depth %d: thread %d not runnable (enabled %v)", d, r.forced[d], ids)
			return nil
		}
	case r.mode == modeRandom:
		chosen = ready[r.rng.Intn(len(ready))]
	default:
		// Default policy: lowest-ID runnable thread not in the sleep set.
		for _, t := range ready {
			if !r.sleeping(t.ID) {
				chosen = t
				break
			}
		}
		if chosen == nil {
			// Every enabled thread is asleep: this interleaving only
			// reproduces already-explored behavior. Abandon.
			r.abandoned = true
			return nil
		}
	}
	r.cur = &decision{tid: chosen.ID, enabled: ids, sleepIn: snapshotSleep(r.sleep)}
	r.depth++
	return chosen
}

// closeDecision finalizes the open decision: its accumulated signatures
// wake any sleeping thread whose next transition they conflict with.
func (r *runner) closeDecision() {
	if r.cur == nil {
		return
	}
	d := r.cur
	r.cur = nil
	if len(r.sleep) > 0 {
		kept := r.sleep[:0]
		for _, e := range r.sleep {
			if e.tid == d.tid || conflicts(e.sigs, d.sigs) {
				continue
			}
			kept = append(kept, e)
		}
		r.sleep = kept
	}
	r.decisions = append(r.decisions, *d)
}

func (r *runner) addSleep(tid int, sigs []sig) {
	for _, e := range r.sleep {
		if e.tid == tid {
			return
		}
	}
	r.sleep = append(r.sleep, sleepEntry{tid: tid, sigs: sigs})
}

func (r *runner) sleeping(tid int) bool {
	for _, e := range r.sleep {
		if e.tid == tid {
			return true
		}
	}
	return false
}

func snapshotSleep(s []sleepEntry) []sleepEntry {
	if len(s) == 0 {
		return nil
	}
	return append([]sleepEntry(nil), s...)
}

func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// --- core.Observer ---

func (r *runner) OnAccess(info *core.AccessInfo) {
	if r.cur != nil {
		lo := info.Addr >> r.ex.shift
		hi := (info.Addr + uint64(info.Size) - 1) >> r.ex.shift
		for u := lo; u <= hi; u++ {
			r.cur.sigs = append(r.cur.sigs, sig{unit: u, write: info.Write})
		}
		// Under the PTSB a plain write lands in the thread's private page
		// copy; the visible write is the commit at the next sync point.
		if r.ex.pageConflicts && info.Write && !info.Atomic {
			if r.dirty[info.TID] == nil {
				r.dirty[info.TID] = make(map[uint64]bool)
			}
			for u := info.Addr >> pageShift; u <= (info.Addr+uint64(info.Size)-1)>>pageShift; u++ {
				r.dirty[info.TID][u] = true
			}
		}
	}
	if r.det != nil {
		inAsm := r.asmDepth[info.TID] > 0
		syncish := info.Atomic || info.Runtime || inAsm
		acq, rel := syncish, syncish // runtime/asm synchronize fully
		if info.Atomic && !info.Runtime && !inAsm {
			k := r.topKind(info.TID)
			acq, rel = k.Acquires(), k.Releases()
		}
		r.det.onAccess(info, syncish, acq, rel)
	}
}

// topKind is the innermost atomic region the thread is executing in; a bare
// atomic (runtime-internal, no region bracket) defaults to seq_cst.
func (r *runner) topKind(tid int) machine.RegionKind {
	if s := r.ordStack[tid]; len(s) > 0 {
		return s[len(s)-1]
	}
	return machine.RegionAtomicStrong
}

func (r *runner) OnRegion(tid int, k machine.RegionKind, enter bool) {
	switch {
	case k == machine.RegionAsm:
		if enter {
			r.commitDirty(tid)
			r.asmDepth[tid]++
		} else if r.asmDepth[tid] > 0 {
			r.asmDepth[tid]--
		}
	case k.IsFence():
		if enter {
			r.commitDirty(tid)
			if r.det != nil {
				r.det.onFence(tid, k.Acquires(), k.Releases())
			}
		}
	case k.IsAtomic():
		if enter {
			if k != machine.RegionAtomicRelaxed {
				// The CCC controller flushes the PTSB on entry to any
				// non-relaxed atomic region; the commit is a visible effect
				// the exploration must order against.
				r.commitDirty(tid)
			}
			r.ordStack[tid] = append(r.ordStack[tid], k)
		} else if n := len(r.ordStack[tid]); n > 0 {
			r.ordStack[tid] = r.ordStack[tid][:n-1]
		}
	}
}

// commitDirty records a PTSB commit: every page the thread plain-wrote
// since the last flush becomes visible, so the commit conflicts like a
// write to each of those pages.
func (r *runner) commitDirty(tid int) {
	if !r.ex.pageConflicts || r.cur == nil || len(r.dirty[tid]) == 0 {
		return
	}
	for _, u := range sortedUnits(r.dirty[tid]) {
		r.cur.sigs = append(r.cur.sigs, sig{unit: u, write: true})
	}
	r.dirty[tid] = nil
}

func (r *runner) OnSync(tid int) {
	r.commitDirty(tid)
	if r.det != nil {
		r.det.onSync(tid)
	}
}

func (r *runner) OnWake(waker, wakee int) {
	if r.cur != nil {
		r.cur.wakes = append(r.cur.wakes, wakee)
	}
	if r.det != nil {
		r.det.onWake(waker, wakee)
	}
}

func sortedUnits(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for u := range m {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- execution ---

// runResult is one execution's record.
type runResult struct {
	decisions []decision
	abandoned bool
	outcome   string
	validated bool
	valErr    string
	races     []RaceReport
}

func (rr *runResult) schedule() []int {
	out := make([]int, len(rr.decisions))
	for i, d := range rr.decisions {
		out[i] = d.tid
	}
	return out
}

// explorer owns one exploration: options, the workload factory, conflict
// granularity and the aggregated result.
type explorer struct {
	factory       Factory
	opts          Options
	mode          mode
	threads       int
	shift         uint
	pageConflicts bool
	res           *ExploreResult
	raceKeys      map[[2]uint64]bool
}

func newExplorer(f Factory, opts Options, m mode) (*explorer, error) {
	opts = opts.withDefaults()
	w, err := f()
	if err != nil {
		return nil, err
	}
	threads := w.Info().Threads
	if opts.Threads > 0 {
		threads = opts.Threads
	}
	if threads < 1 {
		return nil, fmt.Errorf("mc: workload %s declares no threads", w.Name())
	}
	pageConflicts := opts.ForceProtect && opts.Setup.IsTMI()
	shift := uint(lineShift)
	if pageConflicts {
		shift = pageShift
	}
	return &explorer{
		factory: f, opts: opts, mode: m, threads: threads,
		shift: shift, pageConflicts: pageConflicts,
		res: &ExploreResult{
			Workload: w.Name(),
			Setup:    opts.Setup.String(),
			Mode:     m.String(),
			Outcomes: make(map[string]*OutcomeInfo),
		},
		raceKeys: make(map[[2]uint64]bool),
	}, nil
}

// runOnce executes one schedule: the forced prefix, then the mode's policy.
func (e *explorer) runOnce(forced []int, nodes []*node, m mode, rng *rand.Rand) (*runResult, error) {
	w, err := e.factory()
	if err != nil {
		return nil, err
	}
	r := &runner{
		ex: e, mode: m, forced: forced, nodes: nodes, rng: rng,
		asmDepth: make([]int, e.threads),
		ordStack: make([][]machine.RegionKind, e.threads),
		dirty:    make([]map[uint64]bool, e.threads),
	}
	if e.opts.Race {
		r.det = newRaceDetector(e.threads)
	}
	cfg := core.Config{
		Setup:        e.opts.Setup,
		ForceProtect: e.opts.ForceProtect,
		Threads:      e.opts.Threads,
		Seed:         e.opts.Seed,
		Scheduler:    r,
		Observer:     r,
		PostRun: func(env workload.Env) {
			if o, ok := w.(workload.Outcomer); ok {
				r.outcome = o.Outcome(env)
				r.gotOutcome = true
			}
		},
	}
	rep, err := core.Run(w, cfg)
	r.closeDecision()
	rr := &runResult{decisions: r.decisions}
	if r.det != nil {
		rr.races = r.det.races
	}
	if err != nil {
		if errors.Is(err, machine.ErrScheduleAbandoned) {
			if r.errRun != nil {
				return nil, r.errRun
			}
			rr.abandoned = true
			return rr, nil
		}
		return nil, err
	}
	switch {
	case rep.Hung:
		rr.outcome = "hung: " + rep.HangReason
	case r.gotOutcome:
		rr.outcome = r.outcome
	case rep.Validated:
		rr.outcome = "ok"
	default:
		rr.outcome = "invalid: " + rep.ValidationErr
	}
	rr.validated = rep.Validated
	rr.valErr = rep.ValidationErr
	return rr, nil
}

// record folds one run into the aggregated result.
func (e *explorer) record(rr *runResult) {
	e.res.Runs++
	if len(rr.decisions) > e.res.MaxDepth {
		e.res.MaxDepth = len(rr.decisions)
	}
	if rr.abandoned {
		e.res.SleepBlocked++
	} else {
		info := e.res.Outcomes[rr.outcome]
		if info == nil {
			info = &OutcomeInfo{
				Outcome:       rr.outcome,
				Schedule:      rr.schedule(),
				Validated:     rr.validated,
				ValidationErr: rr.valErr,
			}
			e.res.Outcomes[rr.outcome] = info
		}
		info.Count++
	}
	for _, race := range rr.races {
		key := [2]uint64{race.PC1, race.PC2}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		if e.raceKeys[key] {
			continue
		}
		e.raceKeys[key] = true
		race.Schedule = rr.schedule()
		e.res.Races = append(e.res.Races, race)
	}
}

// sample runs the random-walk fallback: one default schedule, then
// opts.Schedules-1 uniform random walks.
func (e *explorer) sample() error {
	rng := rand.New(rand.NewSource(e.opts.Seed*104729 + 7))
	for i := 0; i < e.opts.Schedules; i++ {
		m := modeRandom
		if i == 0 {
			m = modeShrink // empty prefix + default completion
		}
		rr, err := e.runOnce(nil, nil, m, rng)
		if err != nil {
			return err
		}
		e.record(rr)
	}
	return nil
}
