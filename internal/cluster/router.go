package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
)

// Config tunes a Router. The zero value is usable apart from Nodes.
type Config struct {
	// Nodes is the initial member list (base URLs, e.g.
	// "http://127.0.0.1:7412"). Membership is editable at runtime through
	// the admin API and the health prober.
	Nodes []string
	// VNodes is the virtual-node count per member (default DefaultVNodes).
	VNodes int
	// BoundFactor is the bounded-load headroom (default DefaultBoundFactor).
	BoundFactor float64
	// ProbeInterval is the /healthz probe cadence (default 500ms; <0
	// disables probing — tests drive membership by hand).
	ProbeInterval time.Duration
	// FailAfter is the consecutive probe failures that mark a node dead and
	// pull it from the ring (default 3). One success re-admits it.
	FailAfter int
	// MaxFrameBytes bounds one relayed wire unit (default toolio.MaxWireLine).
	MaxFrameBytes int
	// MigrateTimeout bounds one source-side /v1/migrate call (default 30s).
	MigrateTimeout time.Duration
	// HelloTimeout bounds the hello-to-response-headers handshake when a
	// leg opens (default 5s). The stream itself is unbounded; only node
	// admission must answer promptly.
	HelloTimeout time.Duration
	// HTTP is the upstream transport (default a dedicated pooled client).
	HTTP *http.Client

	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.BoundFactor <= 1 {
		c.BoundFactor = DefaultBoundFactor
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = maxWireLine
	}
	if c.MigrateTimeout <= 0 {
		c.MigrateTimeout = 30 * time.Second
	}
	if c.HelloTimeout <= 0 {
		c.HelloTimeout = 5 * time.Second
	}
	if c.HTTP == nil {
		c.HTTP = &http.Client{}
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// member is one tmid node as the router sees it.
type member struct {
	url      string
	alive    bool
	draining bool
	fails    int                // consecutive probe failures
	active   atomic.Int64       // streams currently relayed to this node
	health   service.NodeHealth // last successful probe's metadata
}

// Router is the consistent-hash routing tier: an HTTP front end that
// relays /v1/stream exchanges to the owning node, watches membership, and
// migrates sessions when ownership moves.
type Router struct {
	cfg     Config
	metrics *routerMetrics

	mu      sync.Mutex // guards members and ring swaps
	members map[string]*member
	ring    *Ring
	gen     atomic.Uint64 // bumped on every ring rebuild; streams watch it

	stopProbe chan struct{}
	probeDone chan struct{}
	stopped   atomic.Bool
}

// New builds a router over the configured members and starts its health
// prober. Close releases it.
func New(cfg Config) *Router {
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:       cfg,
		metrics:   newRouterMetrics(cfg.now),
		members:   map[string]*member{},
		stopProbe: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	for _, n := range cfg.Nodes {
		rt.members[strings.TrimSuffix(n, "/")] = &member{url: strings.TrimSuffix(n, "/"), alive: true}
	}
	rt.rebuildLocked()
	if cfg.ProbeInterval > 0 {
		go rt.probeLoop()
	} else {
		close(rt.probeDone)
	}
	return rt
}

// Close stops the prober. In-flight relays finish on their own.
func (rt *Router) Close() {
	if rt.stopped.CompareAndSwap(false, true) {
		close(rt.stopProbe)
		<-rt.probeDone
	}
}

// Generation returns the current ring generation (bumped on every
// membership or drain change).
func (rt *Router) Generation() uint64 { return rt.gen.Load() }

// rebuildLocked recomputes the ring from alive, non-draining members and
// bumps the generation. Callers hold rt.mu.
func (rt *Router) rebuildLocked() {
	var nodes []string
	for _, m := range rt.members {
		if m.alive && !m.draining {
			nodes = append(nodes, m.url)
		}
	}
	rt.ring = NewRing(nodes, rt.cfg.VNodes, rt.cfg.BoundFactor)
	rt.gen.Add(1)
}

// AddNode admits a node (idempotent) and rebuilds the ring.
func (rt *Router) AddNode(url string) {
	url = strings.TrimSuffix(url, "/")
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if m := rt.members[url]; m != nil {
		if m.alive && !m.draining {
			return
		}
		m.alive, m.draining, m.fails = true, false, 0
	} else {
		rt.members[url] = &member{url: url, alive: true}
	}
	rt.rebuildLocked()
}

// RemoveNode forgets a node entirely and rebuilds the ring.
func (rt *Router) RemoveNode(url string) {
	url = strings.TrimSuffix(url, "/")
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.members[url] == nil {
		return
	}
	delete(rt.members, url)
	rt.rebuildLocked()
}

// DrainNode keeps a node as a migration source but stops placing tenants
// on it: its live streams migrate away at their next clean boundary.
func (rt *Router) DrainNode(url string) {
	url = strings.TrimSuffix(url, "/")
	rt.mu.Lock()
	defer rt.mu.Unlock()
	m := rt.members[url]
	if m == nil || m.draining {
		return
	}
	m.draining = true
	rt.rebuildLocked()
}

// SetNodes replaces the whole member list (the runtime config-reload
// path): new nodes are admitted, missing ones forgotten, drain flags on
// survivors kept.
func (rt *Router) SetNodes(urls []string) {
	want := map[string]bool{}
	for _, u := range urls {
		want[strings.TrimSuffix(u, "/")] = true
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	changed := false
	for u := range want {
		if rt.members[u] == nil {
			rt.members[u] = &member{url: u, alive: true}
			changed = true
		}
	}
	for u := range rt.members {
		if !want[u] {
			delete(rt.members, u)
			changed = true
		}
	}
	if changed {
		rt.rebuildLocked()
	}
}

// pickOwner places a tenant on the current ring under bounded load.
func (rt *Router) pickOwner(tenant string) (string, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	total := 0
	for _, m := range rt.members {
		if m.alive && !m.draining {
			total += int(m.active.Load())
		}
	}
	return rt.ring.Owner(tenant, func(node string) int {
		if m := rt.members[node]; m != nil {
			return int(m.active.Load())
		}
		return 0
	}, total)
}

// nodeAlive reports whether a node is currently alive (migration sources
// must be; a dead node's sessions are gone and its streams restart fresh).
func (rt *Router) nodeAlive(url string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	m := rt.members[url]
	return m != nil && m.alive
}

// trackStream adjusts a node's active-stream count for bounded-load
// placement.
func (rt *Router) trackStream(url string, delta int64) {
	rt.mu.Lock()
	m := rt.members[url]
	rt.mu.Unlock()
	if m != nil {
		m.active.Add(delta)
	}
}

// reportNodeFailure feeds a relay-observed connect failure into the same
// accounting the prober uses, so a crashed node leaves the ring within
// FailAfter observations instead of waiting out full probe rounds.
func (rt *Router) reportNodeFailure(url string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	m := rt.members[url]
	if m == nil || !m.alive {
		return
	}
	m.fails++
	if m.fails >= rt.cfg.FailAfter {
		m.alive = false
		rt.metrics.nodesLost.Add(1)
		rt.rebuildLocked()
	}
}

// Handler returns the router's HTTP surface: the relayed stream endpoint,
// its own health/metrics, and the admin membership API.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/stream", rt.handleStream)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /admin/ring", rt.handleRing)
	mux.HandleFunc("POST /admin/add", rt.handleAdmin((*Router).AddNode))
	mux.HandleFunc("POST /admin/remove", rt.handleAdmin((*Router).RemoveNode))
	mux.HandleFunc("POST /admin/drain", rt.handleAdmin((*Router).DrainNode))
	mux.HandleFunc("POST /admin/reload", rt.handleReload)
	return mux
}

func (rt *Router) handleAdmin(op func(*Router, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		node := r.URL.Query().Get("node")
		if node == "" {
			http.Error(w, "tmirouter: need ?node=", http.StatusBadRequest)
			return
		}
		op(rt, node)
		fmt.Fprintf(w, "ok gen=%d\n", rt.gen.Load())
	}
}

// handleReload replaces the member list from a JSON array body (the
// config-reload path; cmd/tmirouter also wires SIGHUP to SetNodes).
func (rt *Router) handleReload(w http.ResponseWriter, r *http.Request) {
	var nodes []string
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&nodes); err != nil {
		http.Error(w, "tmirouter: bad node list: "+err.Error(), http.StatusBadRequest)
		return
	}
	rt.SetNodes(nodes)
	fmt.Fprintf(w, "ok gen=%d nodes=%d\n", rt.gen.Load(), len(nodes))
}

// RingInfo is /admin/ring's JSON body.
type RingInfo struct {
	Generation uint64           `json:"generation"`
	Nodes      []RingMemberInfo `json:"nodes"`
}

// RingMemberInfo describes one member's routing state.
type RingMemberInfo struct {
	URL           string `json:"url"`
	Alive         bool   `json:"alive"`
	Draining      bool   `json:"draining,omitempty"`
	ActiveStreams int64  `json:"active_streams"`
	Sessions      int64  `json:"sessions"`
	NodeID        string `json:"node_id,omitempty"`
}

// Ring returns a snapshot of membership and routing state.
func (rt *Router) Ring() RingInfo {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	info := RingInfo{Generation: rt.gen.Load()}
	for _, m := range rt.members {
		info.Nodes = append(info.Nodes, RingMemberInfo{
			URL: m.url, Alive: m.alive, Draining: m.draining,
			ActiveStreams: m.active.Load(), Sessions: m.health.Sessions, NodeID: m.health.Node,
		})
	}
	sort.Slice(info.Nodes, func(i, j int) bool { return info.Nodes[i].URL < info.Nodes[j].URL })
	return info
}

func (rt *Router) handleRing(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rt.Ring())
}

// handleHealthz: the router is healthy while it has at least one routable
// node.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	info := rt.Ring()
	alive := 0
	for _, n := range info.Nodes {
		if n.Alive && !n.Draining {
			alive++
		}
	}
	status := http.StatusOK
	state := "ok"
	if alive == 0 {
		status = http.StatusServiceUnavailable
		state = "no nodes"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"status": state, "generation": info.Generation,
		"nodes_alive": alive, "nodes_total": len(info.Nodes),
	})
}
