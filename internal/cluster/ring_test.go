package cluster

import (
	"fmt"
	"testing"
)

func ringNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://10.0.0.%d:7412", i+1)
	}
	return nodes
}

func TestRingDeterministicAndCovers(t *testing.T) {
	nodes := ringNodes(3)
	a := NewRing(nodes, 0, 0)
	b := NewRing([]string{nodes[2], nodes[0], nodes[1]}, 0, 0) // order-independent

	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		ownA, okA := a.Owner(key, nil, 0)
		ownB, okB := b.Owner(key, nil, 0)
		if !okA || !okB || ownA != ownB {
			t.Fatalf("key %s: unstable ownership %q/%q (%v/%v)", key, ownA, ownB, okA, okB)
		}
		counts[ownA]++
	}
	// 64 vnodes: a 3-way split lands within a loose band of fair share.
	for node, c := range counts {
		if c < 3000/3/2 || c > 3000*2/3 {
			t.Errorf("node %s owns %d of 3000 keys — ring badly unbalanced", node, c)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if _, ok := NewRing(nil, 0, 0).Owner("x", nil, 0); ok {
		t.Error("empty ring claimed an owner")
	}
	one := NewRing(ringNodes(1), 0, 0)
	if own, ok := one.Owner("x", nil, 0); !ok || own != ringNodes(1)[0] {
		t.Errorf("single-node ring: %q %v", own, ok)
	}
}

// TestRingMinimalDisruption is the consistent-hashing property itself:
// removing one node moves only that node's keys.
func TestRingMinimalDisruption(t *testing.T) {
	nodes := ringNodes(4)
	full := NewRing(nodes, 0, 0)
	reduced := NewRing(nodes[:3], 0, 0) // nodes[3] removed

	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		before, _ := full.Owner(key, nil, 0)
		after, _ := reduced.Owner(key, nil, 0)
		if before != nodes[3] && after != before {
			t.Fatalf("key %s moved %s -> %s though its owner stayed in the ring", key, before, after)
		}
		if before == nodes[3] && after == nodes[3] {
			t.Fatalf("key %s still owned by the removed node", key)
		}
	}
}

// TestRingBoundedLoad: a node at the load bound is skipped for the next
// distinct node; when every node is saturated the primary wins (the bound
// is headroom, not admission control).
func TestRingBoundedLoad(t *testing.T) {
	nodes := ringNodes(3)
	r := NewRing(nodes, 0, 1.25)

	key := "hot-tenant"
	primary, _ := r.Owner(key, nil, 0)

	// Saturate only the primary: placement must skip to another node.
	load := func(n string) int {
		if n == primary {
			return 100
		}
		return 0
	}
	own, ok := r.Owner(key, load, 100)
	if !ok || own == primary {
		t.Fatalf("bounded load kept the saturated primary %q", own)
	}

	// Everyone saturated: fall back to the primary rather than failing.
	all := func(string) int { return 100 }
	own, ok = r.Owner(key, all, 300)
	if !ok || own != primary {
		t.Fatalf("fully saturated ring: owner %q, want primary %q", own, primary)
	}
}
