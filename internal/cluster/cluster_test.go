package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/service"
	"repro/internal/sim/trace"
	"repro/internal/toolio"
)

// syntheticLog is the same shape the service tests use: two threads false
// sharing one line plus a truly shared word, across several windows.
func syntheticLog() *trace.SampleLog {
	log := &trace.SampleLog{PageSize: 4096}
	for w := 0; w < 6; w++ {
		for i := 0; i < 400; i++ {
			tid := i % 2
			log.TapSample(detect.Sample{TID: tid, Addr: 0x10000 + uint64(tid)*8, Width: 8, Write: tid == 0})
			if i%3 == 0 {
				log.TapSample(detect.Sample{TID: tid, Addr: 0x20000, Width: 8, Write: true})
			}
		}
		log.TapWindow(0.0001, 100)
	}
	return log
}

func offlineTruth(t *testing.T, log *trace.SampleLog, repeat int) []byte {
	t.Helper()
	want, err := service.Replay(log, log.PageSize, detect.Config{}, detect.DefaultPeriodController(), repeat)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func newLocal(t *testing.T, n int, rcfg Config) *Local {
	t.Helper()
	lc, err := NewLocal(n, service.Config{Shards: 2}, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	return lc
}

// TestClusterRelayParity: a client fleet streaming through the router gets
// byte-identical advice in both wire encodings.
func TestClusterRelayParity(t *testing.T) {
	log := syntheticLog()
	want := offlineTruth(t, log, 2)
	lc := newLocal(t, 2, Config{ProbeInterval: -1})

	for _, wire := range []string{"", toolio.WireFormatBinary} {
		var wg sync.WaitGroup
		errs := make([]error, 6)
		for c := 0; c < 6; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				cl := &service.Client{
					BaseURL: lc.RouterURL, Tenant: fmt.Sprintf("par-%s-%d", wire, c),
					PageSize: log.PageSize, Wire: wire,
				}
				res, err := cl.Replay(log, 2)
				if err != nil {
					errs[c] = err
					return
				}
				if !bytes.Equal(res.Advice, want) {
					errs[c] = fmt.Errorf("advice diverged (%d vs %d bytes)", len(res.Advice), len(want))
				}
			}(c)
		}
		wg.Wait()
		for c, err := range errs {
			if err != nil {
				t.Errorf("wire %q client %d: %v", wire, c, err)
			}
		}
	}
	if open := lc.Router.metrics.streamsOpen.Load(); open != 0 {
		t.Errorf("streamsOpen = %d after all fleets finished", open)
	}
}

// streamConn is an interactively driven stream through the router, so
// tests control exactly where window boundaries fall relative to ring
// changes.
type streamConn struct {
	pw   *io.PipeWriter
	resp *http.Response
	br   *bufio.Reader
}

func openStream(t *testing.T, base, tenant string, pageSize int) *streamConn {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	type doRes struct {
		resp *http.Response
		err  error
	}
	ch := make(chan doRes, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		ch <- doRes{resp, err}
	}()
	hello := toolio.WireHello{K: toolio.WireHelloKind, Version: toolio.SchemaVersion, Tenant: tenant, PageSize: pageSize}
	go pw.Write(toolio.EncodeWire(hello))
	res := <-ch
	if res.err != nil {
		t.Fatalf("open stream: %v", res.err)
	}
	if res.resp.StatusCode != http.StatusOK {
		t.Fatalf("open stream: %s", res.resp.Status)
	}
	return &streamConn{pw: pw, resp: res.resp, br: bufio.NewReader(res.resp.Body)}
}

// sendWindow streams window i's samples and tick, and returns the reply
// line (advice or error) including its newline.
func (sc *streamConn) sendWindow(t *testing.T, log *trace.SampleLog, i int) []byte {
	t.Helper()
	samples := log.WindowSamples(i)
	msg := toolio.WireSamples{K: toolio.WireSamplesKind, S: make([][4]uint64, len(samples))}
	for j, sm := range samples {
		wr := uint64(0)
		if sm.Write {
			wr = 1
		}
		msg.S[j] = [4]uint64{uint64(sm.TID), sm.Addr, uint64(sm.Width), wr}
	}
	var buf bytes.Buffer
	buf.Write(toolio.EncodeWire(msg))
	w := log.Windows[i]
	buf.Write(toolio.EncodeWire(toolio.WireTick{K: toolio.WireTickKind, Seq: i, IntervalSec: w.IntervalSec, Period: w.Period}))
	if _, err := sc.pw.Write(buf.Bytes()); err != nil {
		t.Fatalf("window %d write: %v", i, err)
	}
	line, err := sc.br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("window %d reply: %v", i, err)
	}
	return line
}

func (sc *streamConn) close() {
	sc.pw.Close()
	io.Copy(io.Discard, sc.resp.Body)
	sc.resp.Body.Close()
}

// TestLiveMigrationMidStream is the tentpole's contract end to end: a
// stream starts on a one-node ring, a node is added and the first drained
// mid-stream, and the session live-migrates at the next clean boundary —
// with the full advice stream byte-identical to the offline replay.
func TestLiveMigrationMidStream(t *testing.T) {
	log := syntheticLog()
	want := offlineTruth(t, log, 1)
	lc := newLocal(t, 1, Config{ProbeInterval: -1})

	const tenant = "live-1"
	sc := openStream(t, lc.RouterURL, tenant, log.PageSize)
	defer sc.close()

	var advice bytes.Buffer
	advice.Write(sc.sendWindow(t, log, 0))

	// Ring change under the live stream: new node in, original node
	// drained. The tenant's only possible owner is now the new node.
	added, err := lc.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	original := lc.Drain(0)

	for i := 1; i < len(log.Windows); i++ {
		line := sc.sendWindow(t, log, i)
		if m, err := toolio.DecodeWireMsg(bytes.TrimRight(line, "\n")); err != nil || m.K != toolio.WireAdviceKind {
			t.Fatalf("window %d: reply not advice: %s", i, line)
		}
		advice.Write(line)
	}
	if !bytes.Equal(advice.Bytes(), want) {
		t.Errorf("advice across the migration diverged from offline replay:\ngot %d bytes, want %d", advice.Len(), len(want))
	}

	ms := lc.Router.MigrationStats()
	if ms.OK != 1 || ms.Failed != 0 {
		t.Errorf("migrations = %+v, want exactly one ok", ms)
	}
	if ms.Records != uint64(log.Windows[0].End) {
		t.Errorf("migrated %d records, want window 0's %d", ms.Records, log.Windows[0].End)
	}
	// The session lives on the new node now, and only there.
	for url, wantStatus := range map[string]int{added: http.StatusOK, original: http.StatusNotFound} {
		resp, err := http.Get(url + "/v1/export?tenant=" + tenant)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("export on %s: status %d, want %d", url, resp.StatusCode, wantStatus)
		}
	}
}

// TestKillMidStreamIsRetryable: killing the owning node mid-stream answers
// the client with a retryable wire error (state is gone — resuming would
// corrupt advice), and a fresh retry of the same tenant converges on full
// parity on a surviving node.
func TestKillMidStreamIsRetryable(t *testing.T) {
	log := syntheticLog()
	want := offlineTruth(t, log, 1)
	lc := newLocal(t, 2, Config{ProbeInterval: 50 * time.Millisecond, FailAfter: 2})

	const tenant = "kill-1"
	owner, ok := lc.Router.pickOwner(tenant)
	if !ok {
		t.Fatal("no owner")
	}
	ownerIdx := -1
	for i, url := range lc.NodeURLs() {
		if url == owner {
			ownerIdx = i
		}
	}

	sc := openStream(t, lc.RouterURL, tenant, log.PageSize)
	defer sc.close()
	sc.sendWindow(t, log, 0)

	lc.Kill(ownerIdx)

	// The next round trip must come back as a retryable wire error — the
	// relay may need one write to observe the severed leg, so allow the
	// reply to take a moment but never be wrong.
	samples := toolio.WireSamples{K: toolio.WireSamplesKind, S: [][4]uint64{{0, 0x10000, 8, 1}}}
	if _, err := sc.pw.Write(toolio.EncodeWire(samples)); err == nil {
		w := log.Windows[1]
		sc.pw.Write(toolio.EncodeWire(toolio.WireTick{K: toolio.WireTickKind, Seq: 1, IntervalSec: w.IntervalSec, Period: w.Period}))
	}
	line, err := sc.br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("expected a wire error line, got transport error %v", err)
	}
	m, err := toolio.DecodeWireMsg(bytes.TrimRight(line, "\n"))
	if err != nil || m.K != toolio.WireErrorKind || m.RetryMs <= 0 {
		t.Fatalf("reply after kill = %s, want retryable wire error", line)
	}

	// Retry fresh (same tenant, new stream): once the prober pulls the dead
	// node, the ring places it on the survivor and parity holds end to end.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cl := &service.Client{BaseURL: lc.RouterURL, Tenant: tenant, PageSize: log.PageSize}
		res, err := cl.Replay(log, 1)
		if err == nil {
			if !bytes.Equal(res.Advice, want) {
				t.Fatalf("post-kill replay lost parity (%d vs %d bytes)", len(res.Advice), len(want))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retry never succeeded after node kill: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestRouterAdminAndMetrics covers the operator surface: ring snapshots,
// membership edits over HTTP, config reload, and the aggregated metrics
// exposition.
func TestRouterAdminAndMetrics(t *testing.T) {
	log := syntheticLog()
	lc := newLocal(t, 2, Config{ProbeInterval: -1})

	cl := &service.Client{BaseURL: lc.RouterURL, Tenant: "adm-1", PageSize: log.PageSize}
	if _, err := cl.Replay(log, 1); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(lc.RouterURL + "/admin/ring")
	if err != nil {
		t.Fatal(err)
	}
	var info RingInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(info.Nodes) != 2 || !info.Nodes[0].Alive || !info.Nodes[1].Alive {
		t.Fatalf("ring info %+v, want 2 alive nodes", info)
	}

	resp, err = http.Get(lc.RouterURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"tmirouter_streams_total 1",
		"tmirouter_ticks_relayed_total " + fmt.Sprint(len(log.Windows)),
		"tmirouter_ring_generation",
		"tmirouter_migration_ms_bucket",
		`tmid_sessions_active{node="` + lc.NodeURLs()[0] + `"}`, // aggregated node scrape
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Drain via admin API bumps the generation; reload replaces membership.
	gen := lc.Router.Generation()
	resp, err = http.Post(lc.RouterURL+"/admin/drain?node="+lc.NodeURLs()[1], "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if lc.Router.Generation() != gen+1 {
		t.Errorf("drain did not bump generation (%d -> %d)", gen, lc.Router.Generation())
	}

	nodes, _ := json.Marshal([]string{lc.NodeURLs()[0]})
	resp, err = http.Post(lc.RouterURL+"/admin/reload", "application/json", bytes.NewReader(nodes))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := lc.Router.Ring(); len(got.Nodes) != 1 || got.Nodes[0].URL != lc.NodeURLs()[0] {
		t.Errorf("reload left membership %+v", got.Nodes)
	}

	// Reloading to an empty list leaves the router unhealthy.
	resp, err = http.Post(lc.RouterURL+"/admin/reload", "application/json", strings.NewReader("[]"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, err = http.Get(lc.RouterURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz with no nodes: status %d, want 503", resp.StatusCode)
	}
}

// TestProberDetectsDeathAndRecovery: the /healthz prober pulls a dead node
// from the ring after FailAfter misses and learns node metadata from live
// ones.
func TestProberDetectsDeathAndRecovery(t *testing.T) {
	lc := newLocal(t, 2, Config{ProbeInterval: 30 * time.Millisecond, FailAfter: 2})

	deadline := time.Now().Add(5 * time.Second)
	for {
		info := lc.Router.Ring()
		if len(info.Nodes) == 2 && info.Nodes[0].NodeID != "" && info.Nodes[1].NodeID != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober never learned node metadata: %+v", info)
		}
		time.Sleep(20 * time.Millisecond)
	}

	dead := lc.Kill(0)
	for {
		alive := 0
		for _, n := range lc.Router.Ring().Nodes {
			if n.Alive {
				alive++
			}
		}
		if alive == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober never detected the death of %s", dead)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
