package cluster

import (
	"fmt"
	"net"
	"net/http"
	"sync"

	"repro/internal/service"
)

// Local is an in-process cluster — N migratable tmid nodes plus a router,
// each on its own loopback listener so every hop crosses a real HTTP
// connection. tmiload's chaos mode and the harness's cluster experiment
// run against one of these: Kill is a hard stop (connections severed,
// session state marooned in the dead process image — exactly what a
// crashed node loses), AddNode brings a fresh node up through the
// router's admin API mid-run.
type Local struct {
	// Router is the routing tier; RouterURL is its HTTP base.
	Router    *Router
	RouterURL string

	routerHS *http.Server
	scfg     service.Config

	mu    sync.Mutex
	nodes []*localNode
}

type localNode struct {
	url    string
	srv    *service.Server
	hs     *http.Server
	killed bool
}

// NewLocal starts n nodes and a router over them. scfg seeds every node's
// service config (Migratable is forced on, NodeID is assigned node-<i>);
// rcfg seeds the router (Nodes is filled in).
func NewLocal(n int, scfg service.Config, rcfg Config) (*Local, error) {
	lc := &Local{scfg: scfg}
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		node, err := lc.startNode(fmt.Sprintf("node-%d", i))
		if err != nil {
			lc.Close()
			return nil, err
		}
		urls = append(urls, node.url)
	}
	rcfg.Nodes = urls
	lc.Router = New(rcfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		lc.Close()
		return nil, err
	}
	lc.RouterURL = "http://" + ln.Addr().String()
	lc.routerHS = &http.Server{Handler: lc.Router.Handler()}
	go lc.routerHS.Serve(ln)
	return lc, nil
}

// startNode boots one migratable tmid node on a fresh loopback listener.
func (lc *Local) startNode(nodeID string) (*localNode, error) {
	cfg := lc.scfg
	cfg.Migratable = true
	cfg.NodeID = nodeID
	srv := service.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Drain()
		return nil, err
	}
	node := &localNode{
		url: "http://" + ln.Addr().String(),
		srv: srv,
		hs:  &http.Server{Handler: srv.Handler()},
	}
	go node.hs.Serve(ln)
	lc.mu.Lock()
	lc.nodes = append(lc.nodes, node)
	lc.mu.Unlock()
	return node, nil
}

// NodeURLs returns the base URLs of all nodes ever started (killed ones
// included).
func (lc *Local) NodeURLs() []string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	urls := make([]string, len(lc.nodes))
	for i, n := range lc.nodes {
		urls[i] = n.url
	}
	return urls
}

// Kill hard-stops node i: the listener closes and every open connection is
// severed mid-flight, so its resident sessions are unrecoverable — the
// router must detect the loss and affected clients must restart their
// streams. Returns the dead node's URL.
func (lc *Local) Kill(i int) string {
	lc.mu.Lock()
	node := lc.nodes[i]
	node.killed = true
	lc.mu.Unlock()
	node.hs.Close()
	return node.url
}

// AddNode boots a fresh node and admits it through the router's admin API
// (the same HTTP surface an operator would hit), returning its URL.
func (lc *Local) AddNode() (string, error) {
	lc.mu.Lock()
	id := len(lc.nodes)
	lc.mu.Unlock()
	node, err := lc.startNode(fmt.Sprintf("node-%d", id))
	if err != nil {
		return "", err
	}
	resp, err := http.Post(lc.RouterURL+"/admin/add?node="+node.url, "", nil)
	if err != nil {
		return "", err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("admin/add: %s", resp.Status)
	}
	return node.url, nil
}

// Drain marks node i draining through the router (live streams migrate
// away at their next clean boundary; the node itself keeps serving as a
// migration source).
func (lc *Local) Drain(i int) string {
	lc.mu.Lock()
	node := lc.nodes[i]
	lc.mu.Unlock()
	lc.Router.DrainNode(node.url)
	return node.url
}

// Close stops the router and every still-running node.
func (lc *Local) Close() {
	if lc.routerHS != nil {
		lc.routerHS.Close()
	}
	if lc.Router != nil {
		lc.Router.Close()
	}
	lc.mu.Lock()
	nodes := append([]*localNode(nil), lc.nodes...)
	lc.mu.Unlock()
	for _, n := range nodes {
		if !n.killed {
			n.hs.Close()
			n.srv.Drain()
		}
	}
}
