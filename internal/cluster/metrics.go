package cluster

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// routerMetrics is the router's own registry plus the aggregation point
// for per-node scrapes: /metrics renders the router counters (streams,
// relayed messages, migrations with a latency histogram, membership
// churn, ring generation) and then re-exports a whitelisted slice of each
// alive node's /metrics with a node label, so one scrape sees the whole
// cluster's queue depths and session counts.
type routerMetrics struct {
	now func() time.Time

	streamsTotal    atomic.Uint64
	streamsOpen     atomic.Int64
	streamsFailed   atomic.Uint64 // streams ended with a router-injected wire error
	messagesRelayed atomic.Uint64
	ticksRelayed    atomic.Uint64

	migrationsOK     atomic.Uint64
	migrationsNoop   atomic.Uint64 // source had no session (evicted or never fed)
	migrationsFailed atomic.Uint64
	migratedRecords  atomic.Uint64

	nodesLost      atomic.Uint64
	nodesRecovered atomic.Uint64

	mu        sync.Mutex
	migrateMS histogram // migration latency, milliseconds
}

// histogram is a fixed-bucket histogram (same shape the service uses).
type histogram struct {
	bounds []float64
	counts []uint64
	sum    float64
	count  uint64
}

func newRouterMetrics(now func() time.Time) *routerMetrics {
	return &routerMetrics{now: now, migrateMS: histogram{
		bounds: []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500},
		counts: make([]uint64, 13),
	}}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// quantile returns the q-quantile upper bound from the bucket counts (the
// harness reads p50/p99 off this; bucket resolution is plenty for a
// latency budget assertion).
func (h *histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	cum := uint64(0)
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1] * 2 // +Inf bucket: report beyond the last bound
		}
	}
	return h.bounds[len(h.bounds)-1] * 2
}

// migrationDone records one migration attempt's outcome and latency.
func (m *routerMetrics) migrationDone(result string, records int, d time.Duration) {
	switch result {
	case "ok":
		m.migrationsOK.Add(1)
		m.migratedRecords.Add(uint64(records))
	case "noop":
		m.migrationsNoop.Add(1)
	default:
		m.migrationsFailed.Add(1)
	}
	m.mu.Lock()
	m.migrateMS.observe(float64(d) / float64(time.Millisecond))
	m.mu.Unlock()
}

// MigrationStats is the harness/tmiload-facing summary of migration
// activity.
type MigrationStats struct {
	OK, Noop, Failed uint64
	Records          uint64
	P50ms, P99ms     float64
	// TotalMS is the summed wall time of all observed migrations, so
	// Records/(TotalMS/1000) is the cluster's rebalance throughput.
	TotalMS float64
}

// MigrationStats snapshots migration counters and latency quantiles.
func (rt *Router) MigrationStats() MigrationStats {
	m := rt.metrics
	m.mu.Lock()
	p50, p99 := m.migrateMS.quantile(0.50), m.migrateMS.quantile(0.99)
	sum := m.migrateMS.sum
	m.mu.Unlock()
	return MigrationStats{
		OK: m.migrationsOK.Load(), Noop: m.migrationsNoop.Load(), Failed: m.migrationsFailed.Load(),
		Records: m.migratedRecords.Load(), P50ms: p50, P99ms: p99, TotalMS: sum,
	}
}

// nodeMetricWhitelist is the slice of each node's /metrics the router
// re-exports under a node label. Short and intentional: the cluster-level
// scrape answers "where are my sessions and how deep are the queues", not
// "mirror every node series".
var nodeMetricWhitelist = []string{
	"tmid_queue_depth",
	"tmid_sessions_active",
	"tmid_streams_open",
	"tmid_ingest_records_total",
	"tmid_sessions_migrated_in_total",
	"tmid_sessions_migrated_out_total",
	"tmid_migrate_failed_total",
}

// handleMetrics renders the router registry and the aggregated node slice.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := rt.metrics
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")

	counter("tmirouter_streams_total", "Client streams admitted and relayed.", m.streamsTotal.Load())
	gauge("tmirouter_streams_open", "Client streams currently relayed.", float64(m.streamsOpen.Load()))
	counter("tmirouter_streams_failed_total", "Streams ended with a router-injected retryable error.", m.streamsFailed.Load())
	counter("tmirouter_messages_relayed_total", "Wire messages forwarded to owning nodes.", m.messagesRelayed.Load())
	counter("tmirouter_ticks_relayed_total", "Tick/advice round trips relayed.", m.ticksRelayed.Load())
	fmt.Fprintf(w, "# HELP tmirouter_migrations_total Session migrations by outcome.\n# TYPE tmirouter_migrations_total counter\n")
	fmt.Fprintf(w, "tmirouter_migrations_total{result=\"ok\"} %d\n", m.migrationsOK.Load())
	fmt.Fprintf(w, "tmirouter_migrations_total{result=\"noop\"} %d\n", m.migrationsNoop.Load())
	fmt.Fprintf(w, "tmirouter_migrations_total{result=\"failed\"} %d\n", m.migrationsFailed.Load())
	counter("tmirouter_migrated_records_total", "Sample records shipped in acked migrations.", m.migratedRecords.Load())
	counter("tmirouter_nodes_lost_total", "Nodes pulled from the ring after consecutive failures.", m.nodesLost.Load())
	counter("tmirouter_nodes_recovered_total", "Dead nodes re-admitted after a successful probe.", m.nodesRecovered.Load())
	gauge("tmirouter_ring_generation", "Current ring generation (bumps on every membership change).", float64(rt.gen.Load()))

	m.mu.Lock()
	h := m.migrateMS
	hCounts := append([]uint64(nil), h.counts...)
	hSum, hCount := h.sum, h.count
	m.mu.Unlock()
	fmt.Fprintf(w, "# HELP tmirouter_migration_ms Session migration latency in milliseconds.\n# TYPE tmirouter_migration_ms histogram\n")
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += hCounts[i]
		fmt.Fprintf(w, "tmirouter_migration_ms_bucket{le=\"%g\"} %d\n", b, cum)
	}
	cum += hCounts[len(h.bounds)]
	fmt.Fprintf(w, "tmirouter_migration_ms_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "tmirouter_migration_ms_sum %g\n", hSum)
	fmt.Fprintf(w, "tmirouter_migration_ms_count %d\n", hCount)

	// Membership gauges plus the whitelisted node re-export.
	info := rt.Ring()
	fmt.Fprintf(w, "# HELP tmirouter_node_up 1 when the node answers probes.\n# TYPE tmirouter_node_up gauge\n")
	for _, n := range info.Nodes {
		up := 0
		if n.Alive {
			up = 1
		}
		fmt.Fprintf(w, "tmirouter_node_up{node=%q} %d\n", n.URL, up)
	}
	fmt.Fprintf(w, "# HELP tmirouter_node_streams Streams currently relayed per node.\n# TYPE tmirouter_node_streams gauge\n")
	for _, n := range info.Nodes {
		fmt.Fprintf(w, "tmirouter_node_streams{node=%q} %d\n", n.URL, n.ActiveStreams)
	}
	for _, n := range info.Nodes {
		if !n.Alive {
			continue
		}
		lines, err := scrapeNode(rt.cfg.HTTP, n.URL)
		if err != nil {
			continue // the gap itself shows up as tmirouter_node_up
		}
		w.Write(lines)
	}
}

// scrapeNode fetches one node's /metrics and rewrites the whitelisted
// series with a node label (tmid_queue_depth{shard="0"} becomes
// tmid_queue_depth{node="...",shard="0"}).
func scrapeNode(hc *http.Client, url string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics %s", resp.Status)
	}
	var out strings.Builder
	sc := bufio.NewScanner(io.LimitReader(resp.Body, 1<<20))
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	for sc.Scan() {
		line := sc.Text()
		name, rest, matched := matchWhitelisted(line)
		if !matched {
			continue
		}
		out.WriteString(name)
		if strings.HasPrefix(rest, "{") {
			fmt.Fprintf(&out, "{node=%q,%s\n", url, rest[1:])
		} else {
			fmt.Fprintf(&out, "{node=%q}%s\n", url, rest)
		}
	}
	return []byte(out.String()), sc.Err()
}

// matchWhitelisted splits a sample line into (metric name, remainder) when
// the metric is whitelisted; comment lines and other metrics don't match.
func matchWhitelisted(line string) (string, string, bool) {
	if line == "" || line[0] == '#' {
		return "", "", false
	}
	for _, name := range nodeMetricWhitelist {
		if strings.HasPrefix(line, name) {
			rest := line[len(name):]
			if rest == "" {
				return "", "", false
			}
			if rest[0] == '{' || rest[0] == ' ' {
				return name, rest, true
			}
		}
	}
	return "", "", false
}
