package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/service"
	"repro/internal/toolio"
)

// The health prober drives membership from each node's /healthz: the PR 10
// JSON form (Accept: application/json) carries node ID, schema version and
// session counts, so the router learns identity and load alongside
// liveness. FailAfter consecutive failures pull a node from the ring (and
// bump the lost counter); a single success re-admits it. The relay feeds
// its own connect failures into the same counter so a crashed node leaves
// the ring without waiting out full probe rounds.

// probeLoop runs until Close.
func (rt *Router) probeLoop() {
	defer close(rt.probeDone)
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stopProbe:
			return
		case <-t.C:
		}
		rt.probeOnce()
	}
}

// probeOnce probes every member once and applies the results.
func (rt *Router) probeOnce() {
	rt.mu.Lock()
	urls := make([]string, 0, len(rt.members))
	for u := range rt.members {
		urls = append(urls, u)
	}
	rt.mu.Unlock()
	timeout := rt.cfg.ProbeInterval
	if timeout < time.Second {
		timeout = time.Second
	}
	for _, u := range urls {
		h, err := probeNode(rt.cfg.HTTP, u, timeout)
		rt.mu.Lock()
		m := rt.members[u]
		if m == nil { // removed while probing
			rt.mu.Unlock()
			continue
		}
		if err == nil {
			m.fails = 0
			m.health = h
			if !m.alive {
				m.alive = true
				rt.metrics.nodesRecovered.Add(1)
				rt.rebuildLocked()
			}
		} else {
			m.fails++
			if m.alive && m.fails >= rt.cfg.FailAfter {
				m.alive = false
				rt.metrics.nodesLost.Add(1)
				rt.rebuildLocked()
			}
		}
		rt.mu.Unlock()
	}
}

// probeNode asks one node for its JSON health document. A draining node
// (503) and a schema-incompatible node both count as probe failures: the
// former must leave the ring, the latter must never join it.
func probeNode(hc *http.Client, url string, timeout time.Duration) (service.NodeHealth, error) {
	var h service.NodeHealth
	req, err := http.NewRequest(http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return h, err
	}
	req.Header.Set("Accept", "application/json")
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	resp, err := hc.Do(req.WithContext(ctx))
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return h, err
	}
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("healthz %s", resp.Status)
	}
	if err := json.Unmarshal(body, &h); err != nil {
		return h, fmt.Errorf("healthz not JSON (pre-PR-10 node?): %w", err)
	}
	if h.Schema > toolio.SchemaVersion {
		return h, fmt.Errorf("node schema %d newer than router's %d", h.Schema, toolio.SchemaVersion)
	}
	return h, nil
}
