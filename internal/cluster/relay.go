package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/toolio"
)

// This file is the stream relay: the router speaks just enough of the wire
// protocol to route and cut over streams, and not one byte more. It learns
// the tenant from the hello, forwards sample/tick messages as raw bytes in
// either encoding (it never decodes a sample column or re-renders an
// advice line — parity stays the node's property), and uses the protocol's
// own request/reply rhythm as its migration barrier:
//
//   - after a tick's advice has come back, every sample the relay ever
//     forwarded has been fully ingested by the owning node (the advice
//     reply is produced behind them in the shard queue), and nothing has
//     been forwarded since — the stream is "clean";
//   - ring-generation changes are only acted on at clean boundaries, so an
//     export can never race an in-flight batch;
//   - the relay closes the source leg, calls the source's /v1/migrate
//     (which pushes the session to the new owner and awaits its ack), and
//     only then opens the destination leg and resumes forwarding.
//
// A node that dies mid-stream takes its session state with it; the relay
// answers the client with a retryable wire error and the client restarts
// the stream from scratch (fresh tenant) against whatever the ring now
// says — the cluster loses availability for one round trip, never
// correctness.

const maxWireLine = toolio.MaxWireLine

// retryMsDefault is the backoff the relay suggests on retryable failures.
const retryMsDefault = 1000

// clientMsgReader frames the client's request body without interpreting
// it: NDJSON mode yields whole lines (newline included), binary mode
// yields whole frames (header included), both tagged with the message
// kind so the relay knows when to await an advice reply.
type clientMsgReader struct {
	br     *bufio.Reader
	binary bool
	max    int
	buf    []byte
}

// next returns the next raw message. The returned slice is reused by the
// following call.
func (cr *clientMsgReader) next() (kind byte, raw []byte, err error) {
	if cr.binary {
		return cr.nextFrame()
	}
	line, err := readRawLine(cr.br, cr.buf[:0], cr.max)
	if err != nil {
		return 0, nil, err
	}
	cr.buf = line
	return peekWireKind(line), line, nil
}

func (cr *clientMsgReader) nextFrame() (byte, []byte, error) {
	if cap(cr.buf) < 8 {
		cr.buf = make([]byte, 0, 64<<10)
	}
	hdr := cr.buf[:8]
	if _, err := io.ReadFull(cr.br, hdr); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("truncated frame header: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(hdr[4:]))
	if n > cr.max {
		return 0, nil, fmt.Errorf("frame payload %d exceeds cap %d", n, cr.max)
	}
	if cap(cr.buf) < 8+n {
		nb := make([]byte, 8+n)
		copy(nb, hdr)
		cr.buf = nb
	}
	raw := cr.buf[:8+n]
	if _, err := io.ReadFull(cr.br, raw[8:]); err != nil {
		return 0, nil, fmt.Errorf("truncated frame payload: %w", err)
	}
	// hdr[3] is the frame kind byte; magic/version stay the node's problem
	// (it rejects malformed frames with a wire error the relay forwards).
	return raw[3], raw, nil
}

// readRawLine reads one newline-terminated line including its terminator
// (appending one at a final unterminated EOF line), reusing buf.
func readRawLine(br *bufio.Reader, buf []byte, maxLen int) ([]byte, error) {
	if maxLen <= 0 {
		maxLen = maxWireLine
	}
	for {
		frag, err := br.ReadSlice('\n')
		buf = append(buf, frag...)
		if len(buf) > maxLen {
			return nil, fmt.Errorf("wire line exceeds %d bytes", maxLen)
		}
		switch {
		case err == nil:
			return buf, nil
		case err == bufio.ErrBufferFull:
			continue
		case err == io.EOF:
			if len(buf) == 0 {
				return nil, io.EOF
			}
			return append(buf, '\n'), nil
		default:
			return nil, err
		}
	}
}

// peekWireKind extracts the "k" discriminator from an NDJSON wire line.
// Every encoder in this codebase emits K first ({"k":"x",...}), so the
// fast path is a prefix check; foreign producers fall back to a full
// decode.
func peekWireKind(line []byte) byte {
	if len(line) >= 8 && bytes.HasPrefix(line, []byte(`{"k":"`)) {
		return line[6]
	}
	if m, err := toolio.DecodeWireMsg(bytes.TrimRight(line, "\n")); err == nil && m.K != "" {
		return m.K[0]
	}
	return 0
}

// leg is one upstream /v1/stream exchange with the current owning node.
type leg struct {
	node string
	pw   *io.PipeWriter
	resp *http.Response
	br   *bufio.Reader
}

// openLeg opens an upstream stream to node and forwards the hello. A
// non-nil response with status != 200 means the node refused admission
// (the caller relays the refusal); a transport error means the node is
// unreachable.
func (rt *Router) openLeg(node string, helloRaw []byte) (*leg, *http.Response, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, node+"/v1/stream", pr)
	if err != nil {
		pw.Close()
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	type doRes struct {
		resp *http.Response
		err  error
	}
	ch := make(chan doRes, 1)
	go func() {
		resp, err := rt.cfg.HTTP.Do(req)
		ch <- doRes{resp, err}
	}()
	// The node reads the hello before answering, and the transport streams
	// the pipe concurrently with Do — a refusing node that never reads the
	// body closes it instead, which unblocks this write with an error.
	go pw.Write(helloRaw)
	var res doRes
	timer := time.NewTimer(rt.cfg.HelloTimeout)
	select {
	case res = <-ch:
		timer.Stop()
	case <-timer.C:
		// A connection that dies between dial and response headers leaves
		// the transport waiting for more request body before it surfaces
		// the error, while the relay sends nothing more until Do returns —
		// a cycle only the body side can break. Closing the pipe fails the
		// in-flight body copy, which lets Do return the transport error.
		err := fmt.Errorf("node %s: no response to hello within %v", node, rt.cfg.HelloTimeout)
		pw.CloseWithError(err)
		res = <-ch
		if res.err == nil {
			res.resp.Body.Close()
			res.err = err
		}
	}
	if res.err != nil {
		pw.CloseWithError(res.err)
		return nil, nil, res.err
	}
	if res.resp.StatusCode != http.StatusOK {
		pw.Close()
		return nil, res.resp, fmt.Errorf("node %s refused stream: %s", node, res.resp.Status)
	}
	rt.trackStream(node, 1)
	return &leg{node: node, pw: pw, resp: res.resp, br: bufio.NewReader(res.resp.Body)}, nil, nil
}

// closeLeg ends the upstream exchange cleanly: EOF to the node (the
// session stays resident there) and the response drained in the
// background.
func (rt *Router) closeLeg(l *leg) {
	if l == nil {
		return
	}
	l.pw.Close()
	go func() {
		io.Copy(io.Discard, l.resp.Body)
		l.resp.Body.Close()
	}()
	rt.trackStream(l.node, -1)
}

// MigrateTenant moves one tenant's session from src to dst through src's
// /v1/migrate, returning the acked record count (0 with a nil error when
// the source had no session to move). It observes migration latency and
// outcome in the router metrics.
func (rt *Router) MigrateTenant(src, dst, tenant string) (int, error) {
	start := rt.cfg.now()
	body, _ := json.Marshal(map[string]string{"tenant": tenant, "target": dst})
	hc := &http.Client{Timeout: rt.cfg.MigrateTimeout}
	resp, err := hc.Post(src+"/v1/migrate", "application/json", bytes.NewReader(body))
	if err != nil {
		rt.metrics.migrationDone("failed", 0, rt.cfg.now().Sub(start))
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		rt.metrics.migrationDone("noop", 0, rt.cfg.now().Sub(start))
		return 0, nil
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		rt.metrics.migrationDone("failed", 0, rt.cfg.now().Sub(start))
		return 0, fmt.Errorf("source %s: %s: %s", src, resp.Status, bytes.TrimSpace(b))
	}
	var ack struct {
		Migrated bool `json:"migrated"`
		Records  int  `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		rt.metrics.migrationDone("failed", 0, rt.cfg.now().Sub(start))
		return 0, fmt.Errorf("bad migrate ack from %s: %w", src, err)
	}
	result := "ok"
	if !ack.Migrated {
		result = "noop"
	}
	rt.metrics.migrationDone(result, ack.Records, rt.cfg.now().Sub(start))
	return ack.Records, nil
}

// handleStream relays one client stream to its owning node, migrating the
// session and switching legs when ownership moves mid-stream.
func (rt *Router) handleStream(w http.ResponseWriter, r *http.Request) {
	br := bufio.NewReaderSize(r.Body, 256<<10)
	// Returning with unread request body arms net/http's post-handler
	// discard, whose EOF can start a background read that races the
	// server's next-request peek ("invalid concurrent Body.Read call"
	// panic). Every early exit therefore answers the client first (flush,
	// so it isn't left waiting on buffered headers) and then consumes the
	// stream to EOF in-handler; the client closes promptly once it reads
	// the verdict.
	bail := func(msg string, code int) {
		http.Error(w, msg, code)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		io.Copy(io.Discard, br)
	}
	helloRaw, err := readRawLine(br, nil, rt.cfg.MaxFrameBytes)
	if err != nil {
		http.Error(w, "tmirouter: empty stream (expected hello)", http.StatusBadRequest)
		return
	}
	hello, err := toolio.DecodeWireMsg(bytes.TrimRight(helloRaw, "\n"))
	if err != nil {
		bail("tmirouter: first line must be a hello", http.StatusBadRequest)
		return
	}
	if err := toolio.CheckHello(hello); err != nil {
		bail("tmirouter: "+err.Error(), http.StatusBadRequest)
		return
	}
	tenant := hello.Tenant
	genSeen := rt.gen.Load()
	owner, ok := rt.pickOwner(tenant)
	if !ok {
		bail("tmirouter: no live nodes", http.StatusServiceUnavailable)
		return
	}

	l, refusal, err := rt.openLeg(owner, helloRaw)
	if err != nil {
		if refusal != nil {
			// Relay the node's own admission verdict (429 + Retry-After,
			// 503 while draining) so client backoff behavior is unchanged.
			defer refusal.Body.Close()
			if ra := refusal.Header.Get("Retry-After"); ra != "" {
				w.Header().Set("Retry-After", ra)
			}
			body, _ := io.ReadAll(io.LimitReader(refusal.Body, 4096))
			bail(string(bytes.TrimSpace(body)), refusal.StatusCode)
			return
		}
		rt.reportNodeFailure(owner)
		rt.metrics.streamsFailed.Add(1)
		bail("tmirouter: node unreachable: "+err.Error(), http.StatusBadGateway)
		return
	}

	rt.metrics.streamsTotal.Add(1)
	rt.metrics.streamsOpen.Add(1)
	defer rt.metrics.streamsOpen.Add(-1)

	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush()

	failStream := func(msg string) {
		rt.metrics.streamsFailed.Add(1)
		w.Write(toolio.EncodeWire(toolio.WireError{K: toolio.WireErrorKind, Error: msg, RetryMs: retryMsDefault}))
		flush()
		io.Copy(io.Discard, br) // see bail: never return with unread body
	}

	cr := &clientMsgReader{br: br, binary: hello.Wire == toolio.WireFormatBinary, max: rt.cfg.MaxFrameBytes}
	clean := true
	var advBuf []byte
	for {
		kind, raw, err := cr.next()
		if err == io.EOF {
			rt.closeLeg(l)
			return
		}
		if err != nil {
			failStream("tmirouter: " + err.Error())
			rt.closeLeg(l)
			return
		}
		// Ownership is re-checked only at clean boundaries: everything the
		// relay has forwarded is fully ingested upstream, so an export now
		// observes the complete session.
		if clean {
			if g := rt.gen.Load(); g != genSeen {
				genSeen = g
				newOwner, ok := rt.pickOwner(tenant)
				if !ok {
					failStream("tmirouter: no live nodes")
					rt.closeLeg(l)
					return
				}
				if newOwner != l.node {
					l, ok = rt.switchLeg(l, tenant, helloRaw, newOwner, failStream)
					if !ok {
						return
					}
				}
			}
		}
		if _, err := l.pw.Write(raw); err != nil {
			rt.reportNodeFailure(l.node)
			failStream("tmirouter: owning node lost mid-stream; restart the stream")
			rt.closeLeg(l)
			return
		}
		rt.metrics.messagesRelayed.Add(1)
		switch kind {
		case toolio.WireSamplesKind[0]:
			clean = false
		case toolio.WireTickKind[0]:
			advRaw, err := readRawLine(l.br, advBuf[:0], rt.cfg.MaxFrameBytes)
			if err != nil {
				rt.reportNodeFailure(l.node)
				failStream("tmirouter: owning node lost awaiting advice; restart the stream")
				rt.closeLeg(l)
				return
			}
			advBuf = advRaw
			w.Write(advRaw)
			flush()
			if peekWireKind(advRaw) == toolio.WireErrorKind[0] {
				// The node aborted the stream; its error (already relayed
				// verbatim) carries the retry hint.
				rt.metrics.streamsFailed.Add(1)
				rt.closeLeg(l)
				io.Copy(io.Discard, br) // see bail: never return with unread body
				return
			}
			rt.metrics.ticksRelayed.Add(1)
			clean = true
		}
	}
}

// switchLeg performs the live cutover: close the source leg (EOF — the
// session stays resident), migrate the session to the new owner, reopen
// there. Failure paths answer the client with a retryable error and false;
// the client restarts the stream and the ring places it freshly.
func (rt *Router) switchLeg(old *leg, tenant string, helloRaw []byte, newOwner string, failStream func(string)) (*leg, bool) {
	src := old.node
	srcAlive := rt.nodeAlive(src)
	rt.closeLeg(old)
	if !srcAlive {
		// The source died: its session state is unrecoverable, and resuming
		// against a fresh session would silently change the advice stream.
		// Fail loud and retryable instead.
		failStream("tmirouter: owning node lost; restart the stream")
		return nil, false
	}
	if _, err := rt.MigrateTenant(src, newOwner, tenant); err != nil {
		failStream("tmirouter: migration failed: " + err.Error())
		return nil, false
	}
	l, refusal, err := rt.openLeg(newOwner, helloRaw)
	if err != nil {
		if refusal != nil {
			refusal.Body.Close()
		}
		rt.reportNodeFailure(newOwner)
		failStream("tmirouter: new owner refused stream: " + err.Error())
		return nil, false
	}
	return l, true
}
