// Package cluster is tmid's horizontal scale-out tier: a consistent-hash
// routing proxy (Router) that spreads tenants over N tmid nodes, tracks
// node membership through their /healthz probes, and live-migrates tenant
// sessions between nodes when the ring changes — shipping each session's
// captured trace.SampleLog through the nodes' /v1/migrate endpoint so the
// destination rebuilds byte-identical detector state (DESIGN §17).
//
// The correctness story is the same parity-by-construction argument the
// single-node service makes: the router never interprets or re-renders
// advice, it relays the owning node's bytes; and a migration replays the
// exact sample/window stream the source accepted, through the exact
// session code path, so a rebalanced tenant's advice stream is
// byte-identical to one that never moved (asserted end-to-end by
// tmiload -cluster and the cluster-smoke CI lane).
package cluster

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes and bounded-load
// placement ("Consistent Hashing with Bounded Loads", Mirrokni et al.):
// each node projects VNodes points onto a 64-bit circle, a key's primary
// owner is the first point clockwise of the key's hash, and a node already
// at the load bound is skipped for the next distinct node so one hot node
// cannot absorb an unbounded share of the tenants. The ring itself is
// immutable; Router swaps whole rings on membership changes and bumps a
// generation counter that live streams watch.
type Ring struct {
	vnodes int
	factor float64
	nodes  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// DefaultVNodes is the virtual-node count per node: enough that a 3-node
// ring splits tenants within a few percent of evenly, small enough that
// rebuilding the ring on a membership change is microseconds.
const DefaultVNodes = 64

// DefaultBoundFactor is the bounded-load headroom: a node may carry at
// most ceil(factor * mean) active streams before placement skips past it.
const DefaultBoundFactor = 1.25

// NewRing builds a ring over the given nodes. vnodes <= 0 and
// factor <= 1 take the defaults.
func NewRing(nodes []string, vnodes int, factor float64) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if factor <= 1 {
		factor = DefaultBoundFactor
	}
	r := &Ring{vnodes: vnodes, factor: factor, nodes: append([]string(nil), nodes...)}
	sort.Strings(r.nodes)
	r.points = make([]ringPoint, 0, len(r.nodes)*vnodes)
	for ni, node := range r.nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", node, v)), node: ni})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Nodes returns the ring's members (sorted).
func (r *Ring) Nodes() []string { return r.nodes }

// Len reports the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner places a key. load reports a node's current active-stream count
// and total the cluster-wide count; a nil load disables the bound and the
// primary owner wins. When every distinct node sits at the bound the
// primary owner wins too (the bound is headroom, not an admission gate).
func (r *Ring) Owner(key string, load func(node string) int, total int) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	primary := r.nodes[r.points[i].node]
	if load == nil {
		return primary, true
	}
	bound := int(math.Ceil(r.factor * float64(total+1) / float64(len(r.nodes))))
	if bound < 1 {
		bound = 1
	}
	seen := 0
	tried := make(map[int]bool, len(r.nodes))
	for j := i; seen < len(r.nodes); j++ {
		if j == len(r.points) {
			j = 0
		}
		ni := r.points[j].node
		if tried[ni] {
			continue
		}
		tried[ni] = true
		seen++
		if load(r.nodes[ni]) < bound {
			return r.nodes[ni], true
		}
	}
	return primary, true
}

// hash64 is FNV-1a over the key (the same family the single-node service
// shards tenants with; here it places both vnode points and tenant keys).
func hash64(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}
