// Package repro is a from-scratch Go reproduction of "TMI: Thread Memory
// Isolation for False Sharing Repair" (DeLozier, Eizenberg, Hu, Pokam,
// Devietti — MICRO-50, 2017).
//
// The public API lives in the tmi, tmi/workload and tmi/workloads packages;
// the simulated machine and the TMI runtime live under internal/. See
// README.md for a tour, DESIGN.md for the system inventory and per-
// experiment index, and EXPERIMENTS.md for paper-versus-measured results.
// The root-level benchmarks (bench_test.go) regenerate one configuration of
// every table and figure; cmd/tmibench regenerates them in full.
package repro
