// Quickstart: author a workload against the public API and let TMI find and
// repair its false sharing.
//
// The workload is the classic bug: four threads each increment their own
// counter, but the counters are packed into one cache line. Run it under the
// pthreads baseline and under full TMI and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/tmi"
	"repro/tmi/workload"
)

// counters is a minimal workload.Workload.
type counters struct {
	iters int
	base  uint64
	bar   workload.Barrier
	inc   workload.Site
}

func (c *counters) Name() string { return "quickstart-counters" }

func (c *counters) Info() workload.Info {
	return workload.Info{Threads: 4, HasFalseSharing: true, Desc: "packed per-thread counters"}
}

func (c *counters) Setup(env workload.Env) error {
	// Four 8-byte counters, deliberately packed into a single 64-byte line.
	c.base = env.Alloc(8*env.Threads(), 64)
	c.bar = env.NewBarrier("done", env.Threads())
	c.inc = env.Site("counters.increment", workload.SiteStore, 8)
	return nil
}

func (c *counters) Body(t workload.Thread) {
	mine := c.base + uint64(t.ID())*8
	for i := 0; i < c.iters; i++ {
		t.Store(c.inc, mine, uint64(i+1))
		t.Work(40) // pretend to compute something
	}
	t.Wait(c.bar)
}

func (c *counters) Validate(env workload.Env) error {
	for tid := 0; tid < env.Threads(); tid++ {
		if got := env.Load(c.base+uint64(tid)*8, 8); got != uint64(c.iters) {
			return fmt.Errorf("thread %d counter = %d, want %d", tid, got, c.iters)
		}
	}
	return nil
}

func main() {
	const iters = 20_000

	baseline, err := tmi.Run(&counters{iters: iters}, tmi.Config{System: tmi.Pthreads})
	if err != nil {
		log.Fatal(err)
	}
	repaired, err := tmi.Run(&counters{iters: iters}, tmi.Config{System: tmi.TMIProtect})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pthreads baseline : %.3f ms, %d HITM events\n",
		baseline.SimSeconds*1e3, baseline.HITMEvents)
	fmt.Printf("tmi-protect       : %.3f ms, repaired=%v (%d page(s), T2P %.0f us/thread)\n",
		repaired.SimSeconds*1e3, repaired.Repaired, repaired.PagesProtected, repaired.MeanT2PMicros())
	fmt.Printf("speedup           : %.2fx\n", tmi.Speedup(baseline, repaired))
	if !repaired.Validated {
		log.Fatalf("validation failed: %s", repaired.ValidationErr)
	}
	fmt.Println("results validated: every counter holds its exact final value")
}
