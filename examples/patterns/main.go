// Author a benchmark declaratively with the patterns builder: per-thread
// statistics counters (packed, the bug), a relaxed-atomic refcount, bulk
// streamed input and private scratch — then watch TMI detect and repair only
// what deserves it.
//
//	go run ./examples/patterns
package main

import (
	"fmt"
	"log"

	"repro/tmi"
	"repro/tmi/workload"
	"repro/tmi/workload/patterns"
)

func pipeline(layout patterns.Layout) workload.Workload {
	b := patterns.New("pipeline", 4)
	stats := b.Counters("stage-stats", 4, layout) // per-thread stage counters
	inflight := b.SharedWord("inflight")          // relaxed-atomic refcount
	input := b.Bulk("frames", 96)                 // 96 MB of streamed frames
	scratch := b.PrivateScratch("decode", 2048)
	b.Body(func(t workload.Thread, r *patterns.Resources) {
		for i := 0; i < 12_000; i++ {
			r.Stream(input, t, int64(t.ID())*(24<<20)+int64(i%4096)*512, 512)
			r.Inc(stats, t, i%4)
			r.ScratchWrite(scratch, t, (i%256)*8, uint64(i))
			if i%24 == 0 {
				r.Add(inflight, t, 1, workload.Relaxed)
			}
			t.Work(60)
		}
	})
	return b.Build()
}

func main() {
	base, err := tmi.Run(pipeline(patterns.Packed), tmi.Config{System: tmi.Pthreads})
	if err != nil {
		log.Fatal(err)
	}
	fixed, err := tmi.Run(pipeline(patterns.Padded), tmi.Config{System: tmi.Pthreads})
	if err != nil {
		log.Fatal(err)
	}
	prot, err := tmi.Run(pipeline(patterns.Packed), tmi.Config{System: tmi.TMIProtect})
	if err != nil {
		log.Fatal(err)
	}
	if !prot.Validated {
		log.Fatalf("validation: %s", prot.ValidationErr)
	}

	fmt.Printf("packed (buggy) baseline : %8.3f ms  %8d HITM  %7.1f uJ\n",
		base.SimSeconds*1e3, base.HITMEvents, base.Cache.EnergyMicroJ())
	fmt.Printf("padded (fixed) baseline : %8.3f ms  %8d HITM  %7.1f uJ  (%.2fx)\n",
		fixed.SimSeconds*1e3, fixed.HITMEvents, fixed.Cache.EnergyMicroJ(), tmi.Speedup(base, fixed))
	fmt.Printf("packed under tmi-protect: %8.3f ms  %8d HITM  %7.1f uJ  (%.2fx, %d page repaired)\n",
		prot.SimSeconds*1e3, prot.HITMEvents, prot.Cache.EnergyMicroJ(), tmi.Speedup(base, prot), prot.PagesProtected)
	fmt.Println("\nthe relaxed refcount keeps running lock-free through the repair (no PTSB flushes),")
	fmt.Printf("and validation proves every counter and the refcount exact: flushes=%d\n", prot.CCCFlushes)
}
