// The paper's real-world workload: the leveldb key-value store with the
// injected false-sharing bug (per-thread operation counters packed into one
// cache line), served by the repository's own mini-LSM implementation.
//
// The example contrasts three things the paper measures on leveldb:
//
//   - the injected bug's cost and TMI's automatic repair (Figure 9),
//
//   - detection on the unmodified store, where true sharing dominates and
//     repair correctly stays off (§4.2),
//
//   - why Sheriff cannot run leveldb at all (inline-assembly atomics).
//
//     go run ./examples/leveldb
package main

import (
	"fmt"
	"log"

	"repro/tmi"
	"repro/tmi/workloads"
)

func main() {
	fmt.Println("== leveldb with the injected counter bug")
	base, err := tmi.Run(workloads.Leveldb(workloads.VariantFS), tmi.Config{System: tmi.Pthreads})
	if err != nil {
		log.Fatal(err)
	}
	man, err := tmi.Run(workloads.Leveldb(workloads.VariantManual), tmi.Config{System: tmi.Pthreads})
	if err != nil {
		log.Fatal(err)
	}
	prot, err := tmi.Run(workloads.Leveldb(workloads.VariantFS), tmi.Config{System: tmi.TMIProtect})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  pthreads     %8.3f ms\n", base.SimSeconds*1e3)
	fmt.Printf("  manual fix   %8.3f ms  %.2fx\n", man.SimSeconds*1e3, tmi.Speedup(base, man))
	fmt.Printf("  tmi-protect  %8.3f ms  %.2fx (repaired %d page(s); commits %.1f/s; seq number and\n",
		prot.SimSeconds*1e3, tmi.Speedup(base, prot), prot.PagesProtected, prot.CommitsPerSec)
	fmt.Printf("               write queue keep working through %d CCC flushes)\n", prot.CCCFlushes)
	if !prot.Validated {
		log.Fatalf("validation failed: %s", prot.ValidationErr)
	}

	fmt.Println("\n== unmodified leveldb under detection only")
	clean, err := tmi.Run(workloads.Leveldb(workloads.VariantClean),
		tmi.Config{System: tmi.TMIDetect, HugePages: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d true-sharing vs %d false-sharing records -> repair stays off (repaired=%v)\n",
		clean.TrueRecords, clean.FalseRecords, clean.Repaired)

	fmt.Println("\n== Sheriff on leveldb")
	if _, err := tmi.Run(workloads.Leveldb(workloads.VariantFS), tmi.Config{System: tmi.SheriffProtect}); err != nil {
		fmt.Printf("  %v\n", err)
	} else {
		fmt.Println("  unexpectedly ran")
	}
}
