// The paper's motivating benchmark: Phoenix histogram, whose per-thread RGB
// counters falsely share cache lines depending on the input image.
//
// This example runs both inputs (the standard image and the contention-
// accentuating one) under every system and prints a Figure 9-style row.
//
//	go run ./examples/histogram
package main

import (
	"fmt"
	"log"

	"repro/tmi"
	"repro/tmi/workload"
	"repro/tmi/workloads"
)

func main() {
	for _, variant := range []struct {
		label string
		buggy func() workload.Workload
		fixed func() workload.Workload
	}{
		{"histogram (standard input)",
			func() workload.Workload { return workloads.Histogram(workloads.VariantFS) },
			func() workload.Workload { return workloads.Histogram(workloads.VariantManual) }},
		{"histogramfs (false-sharing-heavy input)",
			func() workload.Workload { return workloads.HistogramFS(workloads.VariantFS) },
			func() workload.Workload { return workloads.HistogramFS(workloads.VariantManual) }},
	} {
		fmt.Printf("== %s\n", variant.label)
		base, err := tmi.Run(variant.buggy(), tmi.Config{System: tmi.Pthreads})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %8.3f ms  (%d HITM events)\n", "pthreads", base.SimSeconds*1e3, base.HITMEvents)

		man, err := tmi.Run(variant.fixed(), tmi.Config{System: tmi.Pthreads})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %8.3f ms  %5.2fx (source padded to cache lines)\n",
			"manual fix", man.SimSeconds*1e3, tmi.Speedup(base, man))

		for _, sys := range []tmi.System{tmi.LASER, tmi.TMIProtect} {
			rep, err := tmi.Run(variant.buggy(), tmi.Config{System: sys})
			if err != nil {
				log.Fatal(err)
			}
			note := ""
			if rep.Repaired && len(rep.T2PMicros) > 0 {
				note = fmt.Sprintf("(repaired at %.3f ms, %d page(s))", rep.RepairAtSec*1e3, rep.PagesProtected)
			}
			fmt.Printf("  %-28s %8.3f ms  %5.2fx %s\n",
				sys.String(), rep.SimSeconds*1e3, tmi.Speedup(base, rep), note)
		}
		fmt.Println()
	}
	fmt.Println("TMI repairs the heavy input nearly as well as editing the source — automatically,")
	fmt.Println("online, and only after the detector sees enough HITM events to be sure.")
}
