// Code-centric consistency demos: the three programs from the paper whose
// *correctness* depends on knowing which consistency model governs each code
// region once a page twinning store buffer is active.
//
//   - Figure 3: aligned 2-byte stores tear into 0xABCD under a raw PTSB;
//   - Figure 11: canneal's lock-free atomic swaps lose/duplicate elements;
//   - Figure 12: cholesky's volatile-flag spin never sees the update.
//
// Each runs under conventional execution, under Sheriff's PTSB (no CCC),
// and under TMI (PTSB + CCC).
//
//	go run ./examples/ccc
package main

import (
	"fmt"
	"log"

	"repro/tmi"
	"repro/tmi/workload"
	"repro/tmi/workloads"
)

func main() {
	demos := []struct {
		title string
		ctor  func() workload.Workload
	}{
		{"Figure 3: word tearing (x must be 0xAB00 or 0x00CD)",
			func() workload.Workload { return workloads.WordTearing(true) }},
		{"Figure 11: canneal atomic swaps (elements must stay a permutation)",
			func() workload.Workload { return workloads.CannealSwap() }},
		{"Figure 12: cholesky flag spin (T0 must observe flag=false)",
			func() workload.Workload { return workloads.CholeskyFlag() }},
	}
	systems := []tmi.System{tmi.Pthreads, tmi.SheriffProtect, tmi.TMIProtect}

	for _, d := range demos {
		fmt.Println("==", d.title)
		for _, sys := range systems {
			rep, err := tmi.Run(d.ctor(), tmi.Config{System: sys})
			if err != nil {
				log.Fatal(err)
			}
			switch {
			case rep.Hung:
				fmt.Printf("  %-18s HUNG (%s)\n", sys, rep.HangReason)
			case !rep.Validated:
				fmt.Printf("  %-18s BROKEN: %s\n", sys, rep.ValidationErr)
			default:
				fmt.Printf("  %-18s correct\n", sys)
			}
		}
		fmt.Println()
	}
	fmt.Println("Sheriff applies its store buffer to atomics and assembly and breaks them;")
	fmt.Println("TMI flushes and disables the PTSB exactly where Table 2 requires, and keeps")
	fmt.Println("the repair benefit everywhere else.")
}
