// Package adjcounters is the classic adjacent-thread-local-counters shape:
// each worker owns one 8-byte counter, but eight counters pack into every
// 64-byte cache line, so logically private updates ping-pong the line.
package adjcounters

import "sync"

type counter struct {
	n uint64
}

// Counters packs one sub-line counter per worker.
type Counters struct {
	slot [8]counter
}

// Run spawns one goroutine per slot; each increments only its own counter.
func Run(c *Counters, steps int) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < steps; s++ {
				c.slot[i].n++
			}
		}()
	}
	wg.Wait()
}
