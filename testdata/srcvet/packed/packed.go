// Package packed is the packed-atomics shape: two goroutines each own one
// atomic counter, but the two words are adjacent fields of one struct and
// share a cache line.
package packed

import "sync/atomic"

// Pair holds two logically independent counters on one line.
type Pair struct {
	A uint64
	B uint64
}

// Run bumps A on one goroutine and B on another.
func Run(p *Pair, steps int, done chan struct{}) {
	go func() {
		for s := 0; s < steps; s++ {
			atomic.AddUint64(&p.A, 1)
		}
		done <- struct{}{}
	}()
	go func() {
		for s := 0; s < steps; s++ {
			atomic.AddUint64(&p.B, 1)
		}
		done <- struct{}{}
	}()
	<-done
	<-done
}
