// Package padded is the manually repaired worker-pool shape: each worker
// struct is padded to a full 64-byte line, so per-worker updates never
// share a line. tmivet must pass it clean.
package padded

import "sync"

type worker struct {
	hits uint64
	_    [56]byte
}

// Pool gives each worker a private line.
type Pool struct {
	workers [4]worker
}

// Run spawns one goroutine per worker slot.
func Run(p *Pool, steps int) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < steps; s++ {
				p.workers[i].hits++
			}
		}()
	}
	wg.Wait()
}
