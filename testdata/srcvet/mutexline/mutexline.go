// Package mutexline shares a cache line between a sync.Mutex and the data
// it protects: the owner writes the data while every contender CASes the
// lock word eight bytes away — the lock-word-sharing shape TMI repairs
// with process-shared lock indirection.
package mutexline

import "sync"

// Stats packs the lock word and the hot counter into one line.
type Stats struct {
	mu   sync.Mutex
	hits uint64
}

// Run hammers the counter from four goroutines under the lock.
func Run(s *Stats, steps int) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < steps; n++ {
				s.mu.Lock()
				s.hits++
				s.mu.Unlock()
			}
		}()
	}
	wg.Wait()
}
