// Package clean holds the control cases: a single-writer region, a
// read-only shared config, and genuine true sharing (two goroutines on
// the same field). None of these is false sharing; tmivet must stay
// silent on all of them.
package clean

// Config is shared read-only.
type Config struct {
	Rate  int
	Depth int
}

// Output is written by exactly one goroutine.
type Output struct {
	Sum   uint64
	Count uint64
}

// Run has one writer goroutine and a read-only config: clean.
func Run(cfg *Config, steps int, done chan struct{}) {
	out := &Output{}
	go func() {
		for s := 0; s < steps; s++ {
			out.Sum += uint64(cfg.Rate)
			out.Count++
		}
		done <- struct{}{}
	}()
	<-done
}

// RunShared writes one field from two goroutines: true sharing, which is
// contention but not a layout bug — tmivet counts it, never flags it.
func RunShared(o *Output, steps int, done chan struct{}) {
	go bump(o, steps, done)
	go bump(o, steps, done)
	<-done
	<-done
}

func bump(o *Output, steps int, done chan struct{}) {
	for s := 0; s < steps; s++ {
		o.Sum++
	}
	done <- struct{}{}
}
